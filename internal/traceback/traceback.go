// Package traceback implements the extension the paper sketches in §1 and
// §7: because InFilter observes which border router each suspect flow
// entered through, its alerts can be aggregated into a traceback verdict —
// the ingress point(s) attack traffic is using to enter the large IP
// network, even though the source addresses themselves are spoofed.
//
// The tracker consumes IDMEF alerts (or engine decisions) and maintains
// per-ingress evidence over a sliding window: alert counts, distinct
// spoofed sources, distinct victims and stage breakdown. Ingresses whose
// evidence dominates are reported as attack entry points, with a
// confidence score proportional to their share of the window's alerts.
package traceback

import (
	"fmt"
	"sort"
	"time"

	"infilter/internal/idmef"
	"infilter/internal/netaddr"
)

// Config tunes the tracker.
type Config struct {
	// Window is how long an alert contributes evidence. Zero defaults to
	// five minutes.
	Window time.Duration
	// MinAlerts is the least evidence an ingress needs before it can be
	// reported. Zero defaults to 5.
	MinAlerts int
	// MinShare is the least share of windowed alerts an ingress needs to
	// be reported (0..1). Zero defaults to 0.2.
	MinShare float64
}

// Defaults for Config.
const (
	DefaultWindow    = 5 * time.Minute
	DefaultMinAlerts = 5
)

// DefaultMinShare is the default MinShare.
const DefaultMinShare = 0.2

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.MinAlerts <= 0 {
		c.MinAlerts = DefaultMinAlerts
	}
	if c.MinShare <= 0 {
		c.MinShare = DefaultMinShare
	}
	return c
}

// event is one windowed alert.
type event struct {
	at     time.Time
	peer   int
	src    netaddr.IPv4
	victim netaddr.IPv4
	stage  idmef.Stage
}

// Ingress is the per-entry-point evidence summary.
type Ingress struct {
	PeerAS          int
	Alerts          int
	Share           float64 // fraction of windowed alerts
	DistinctSources int
	DistinctVictims int
	ByStage         map[idmef.Stage]int
	FirstSeen       time.Time
	LastSeen        time.Time
}

// String summarizes the ingress evidence.
func (in Ingress) String() string {
	return fmt.Sprintf("peerAS=%d alerts=%d share=%.0f%% sources=%d victims=%d",
		in.PeerAS, in.Alerts, 100*in.Share, in.DistinctSources, in.DistinctVictims)
}

// Tracker accumulates alerts into ingress evidence. Not safe for
// concurrent use; serialize with the engine feeding it.
type Tracker struct {
	cfg    Config
	events []event
}

// New returns an empty tracker.
func New(cfg Config) *Tracker {
	return &Tracker{cfg: cfg.withDefaults()}
}

// Observe records one alert. Malformed addresses are counted with zero
// source/victim rather than dropped, so evidence is never lost.
func (t *Tracker) Observe(a idmef.Alert) {
	src, _ := netaddr.ParseIPv4(a.Source.Address)
	dst, _ := netaddr.ParseIPv4(a.Target.Address)
	t.events = append(t.events, event{
		at:     a.CreateTime,
		peer:   a.Assessment.PeerAS,
		src:    src,
		victim: dst,
		stage:  a.Assessment.Stage,
	})
}

// prune drops events older than the window relative to now.
func (t *Tracker) prune(now time.Time) {
	cutoff := now.Add(-t.cfg.Window)
	keep := t.events[:0]
	for _, e := range t.events {
		if !e.at.Before(cutoff) {
			keep = append(keep, e)
		}
	}
	t.events = keep
}

// Snapshot summarizes the evidence in the window ending at now, most
// implicated ingress first.
func (t *Tracker) Snapshot(now time.Time) []Ingress {
	t.prune(now)
	if len(t.events) == 0 {
		return nil
	}
	type agg struct {
		ingress Ingress
		sources map[netaddr.IPv4]struct{}
		victims map[netaddr.IPv4]struct{}
	}
	byPeer := make(map[int]*agg)
	for _, e := range t.events {
		a, ok := byPeer[e.peer]
		if !ok {
			a = &agg{
				ingress: Ingress{
					PeerAS:    e.peer,
					ByStage:   make(map[idmef.Stage]int),
					FirstSeen: e.at,
					LastSeen:  e.at,
				},
				sources: make(map[netaddr.IPv4]struct{}),
				victims: make(map[netaddr.IPv4]struct{}),
			}
			byPeer[e.peer] = a
		}
		a.ingress.Alerts++
		a.ingress.ByStage[e.stage]++
		a.sources[e.src] = struct{}{}
		a.victims[e.victim] = struct{}{}
		if e.at.Before(a.ingress.FirstSeen) {
			a.ingress.FirstSeen = e.at
		}
		if e.at.After(a.ingress.LastSeen) {
			a.ingress.LastSeen = e.at
		}
	}
	total := len(t.events)
	out := make([]Ingress, 0, len(byPeer))
	for _, a := range byPeer {
		a.ingress.Share = float64(a.ingress.Alerts) / float64(total)
		a.ingress.DistinctSources = len(a.sources)
		a.ingress.DistinctVictims = len(a.victims)
		out = append(out, a.ingress)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Alerts != out[j].Alerts {
			return out[i].Alerts > out[j].Alerts
		}
		return out[i].PeerAS < out[j].PeerAS
	})
	return out
}

// EntryPoints returns the ingresses whose evidence clears both the
// absolute and relative thresholds — the traceback verdict.
func (t *Tracker) EntryPoints(now time.Time) []Ingress {
	var out []Ingress
	for _, in := range t.Snapshot(now) {
		if in.Alerts >= t.cfg.MinAlerts && in.Share >= t.cfg.MinShare {
			out = append(out, in)
		}
	}
	return out
}

// WindowSize returns the number of alerts currently in the window (after
// pruning at now).
func (t *Tracker) WindowSize(now time.Time) int {
	t.prune(now)
	return len(t.events)
}
