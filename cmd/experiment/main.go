// Command experiment regenerates the paper's evaluation tables and
// figures (§6.3-6.4) on the emulated testbed: Figures 15/16 (spoofed
// attack detection and false positives), Figures 17/18/19 (route-change
// sensitivity, BI vs EI), and the §6.4 processing-latency comparison.
//
// Examples:
//
//	experiment -figure all
//	experiment -figure 19 -runs 5 -flows 600
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"infilter/internal/analysis"
	"infilter/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		figure      = flag.String("figure", "all", "15, 16, 17, 18, 19, attacks, baselines, latency, campaign, or all")
		seed        = flag.Int64("seed", 1, "experiment seed")
		runs        = flag.Int("runs", 5, "averaged repetitions per data point (paper: 5)")
		flows       = flag.Int("flows", experiment.DefaultNormalFlows, "normal flows per Dagflow source")
		training    = flag.Int("training", experiment.DefaultTrainingFlows, "training cluster size")
		campaignOut = flag.String("campaign-out", "", "write campaign figure JSON to this file (with -figure campaign)")
	)
	flag.Parse()

	opts := experiment.Options{
		Seed:                 *seed,
		Runs:                 *runs,
		NormalFlowsPerSource: *flows,
		TrainingFlows:        *training,
	}

	needAttacks := *figure == "attacks" || *figure == "all"
	needBaselines := *figure == "baselines" || *figure == "all"
	need1516 := *figure == "15" || *figure == "16" || *figure == "all"
	need1719 := *figure == "17" || *figure == "18" || *figure == "19" || *figure == "all"
	needLat := *figure == "latency" || *figure == "all"
	needCampaign := *figure == "campaign" || *figure == "all"
	if !need1516 && !need1719 && !needLat && !needAttacks && !needBaselines && !needCampaign {
		return fmt.Errorf("unknown figure %q", *figure)
	}

	if needAttacks {
		log.Printf("running per-attack breakdown...")
		tab, err := experiment.AttackBreakdown(opts)
		if err != nil {
			return err
		}
		fmt.Println(tab.String())
	}
	if needBaselines {
		log.Printf("running baseline comparison (uRPF, history-based filtering)...")
		results, err := experiment.CompareBaselines(opts)
		if err != nil {
			return err
		}
		fmt.Println(experiment.BaselineTable(results).String())
	}
	if need1516 {
		log.Printf("running spoofed-attack sweep (Figures 15/16)...")
		sw, err := experiment.RunSpoofedSweep(opts)
		if err != nil {
			return err
		}
		if *figure != "16" {
			fmt.Println(sw.Figure15().String())
		}
		if *figure != "15" {
			fmt.Println(sw.Figure16().String())
		}
	}
	if need1719 {
		log.Printf("running route-change sweeps (Figures 17/18/19)...")
		bi, err := experiment.RunRouteChangeSweep(opts, analysis.ModeBasic)
		if err != nil {
			return err
		}
		ei, err := experiment.RunRouteChangeSweep(opts, analysis.ModeEnhanced)
		if err != nil {
			return err
		}
		if *figure == "17" || *figure == "all" {
			fmt.Println(bi.Figure().String())
		}
		if *figure == "18" || *figure == "all" {
			fmt.Println(ei.Figure().String())
		}
		if *figure == "19" || *figure == "all" {
			fmt.Println(experiment.Figure19(bi, ei).String())
		}
	}
	if needCampaign {
		log.Printf("running SAV deployment-rate campaign...")
		res, err := experiment.RunCampaign(experiment.CampaignConfig{
			Seed:                 *seed,
			NormalFlowsPerSource: *flows,
			TrainingFlows:        *training,
		})
		if err != nil {
			return err
		}
		for _, pt := range res.Points {
			fmt.Printf("deployment %3.0f%% (%2d peers): detected %d/%d events (%.1f%%), %d benign flows, %d false positives, %d ttl-stage alerts\n",
				100*pt.DeploymentRate, pt.DeployedPeers, pt.Detected, pt.Launched,
				pt.DetectionRate, pt.BenignFlows, pt.FalsePositives, pt.TTLStageAlerts)
		}
		fmt.Printf("benign-only control: %d flows, %d false positives\n",
			res.BenignOnly.BenignFlows, res.BenignOnly.FalsePositives)
		if *campaignOut != "" {
			f, err := os.Create(*campaignOut)
			if err != nil {
				return err
			}
			if err := experiment.WriteCampaignFigures(f, res); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			log.Printf("campaign figures written to %s", *campaignOut)
		}
	}
	if needLat {
		log.Printf("running latency comparison (§6.4)...")
		biLat, eiLat, err := experiment.LatencyComparison(opts)
		if err != nil {
			return err
		}
		fmt.Printf("§6.4 processing latency: Basic InFilter %v/flow, Enhanced InFilter %v/flow (paper: ~0.5ms vs 2-6ms on 2005 hardware; the ordering and ~an order of magnitude gap carry)\n",
			biLat, eiLat)
	}
	return nil
}
