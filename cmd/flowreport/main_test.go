package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"infilter/internal/flow"
	"infilter/internal/flowtools"
	"infilter/internal/netaddr"
)

func writeStore(t *testing.T, recs []flow.Record) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "flows.iffs")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := flowtools.NewStoreWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := sw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func sampleRecs() []flow.Record {
	start := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	mk := func(src string, port uint16, proto uint8) flow.Record {
		return flow.Record{
			Key: flow.Key{
				Src:     netaddr.MustParseAddr(src),
				Dst:     netaddr.MustParseAddr("192.0.2.1"),
				Proto:   proto,
				DstPort: port,
			},
			Packets: 5, Bytes: 1000,
			Start: start, End: start.Add(time.Second),
		}
	}
	return []flow.Record{
		mk("61.0.0.1", 80, flow.ProtoTCP),
		mk("61.0.0.2", 80, flow.ProtoTCP),
		mk("70.0.0.1", 1434, flow.ProtoUDP),
	}
}

func TestLoadFlowsStore(t *testing.T) {
	path := writeStore(t, sampleRecs())
	recs, err := loadFlows(path, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Errorf("loaded %d flows", len(recs))
	}
}

func TestLoadFlowsRequiresSource(t *testing.T) {
	if _, err := loadFlows("", "", ""); err == nil {
		t.Error("no source: want error")
	}
	if _, err := loadFlows(filepath.Join(t.TempDir(), "missing"), "", ""); err == nil {
		t.Error("missing store: want error")
	}
}

func TestParseGroupFields(t *testing.T) {
	fields, err := parseGroupFields("ip-source-address, ip-destination-port")
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 2 || fields[0] != flowtools.GroupSrcAddr || fields[1] != flowtools.GroupDstPort {
		t.Errorf("fields %v", fields)
	}
	if _, err := parseGroupFields("nope"); err == nil {
		t.Error("unknown field: want error")
	}
	// Every documented field must resolve.
	for name := range groupFieldByName {
		if _, err := parseGroupFields(name); err != nil {
			t.Errorf("field %q: %v", name, err)
		}
	}
}

func TestSortByFlows(t *testing.T) {
	groups := []flowtools.GroupStats{
		{Key: "a", Flows: 1}, {Key: "b", Flows: 5}, {Key: "c", Flows: 3},
	}
	sortByFlows(groups)
	if groups[0].Key != "b" || groups[2].Key != "a" {
		t.Errorf("sorted %v", groups)
	}
}
