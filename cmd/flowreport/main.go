// Command flowreport is the flow-report/flow-filter slice of the
// flow-tools suite: it reads flows from a binary store file, a capture
// archive directory, or ASCII, optionally applies a filter expression, and
// prints grouped statistics.
//
// Examples:
//
//	flowreport -store flows.iffs -group ip-destination-port
//	flowreport -archive ./archive -filter "proto udp and dst-port 1434"
//	flowreport -ascii flows.csv -group ip-source-address,ip-destination-port
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"infilter/internal/flow"
	"infilter/internal/flowtools"
	"infilter/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		storeFile  = flag.String("store", "", "binary flow store file")
		archiveDir = flag.String("archive", "", "capture archive directory")
		asciiFile  = flag.String("ascii", "", "ASCII flow file")
		filterExpr = flag.String("filter", "", "filter expression (see flowtools.CompileFilter)")
		groupSpec  = flag.String("group", "ip-destination-port", "comma-separated grouping fields")
		topN       = flag.Int("top", 0, "show only the top N groups by flow count (0: all)")
	)
	flag.Parse()

	recs, err := loadFlows(*storeFile, *archiveDir, *asciiFile)
	if err != nil {
		return err
	}
	if *filterExpr != "" {
		pred, err := flowtools.CompileFilter(*filterExpr)
		if err != nil {
			return err
		}
		recs = flowtools.Filter(recs, pred)
	}
	fields, err := parseGroupFields(*groupSpec)
	if err != nil {
		return err
	}
	groups := flowtools.Report(recs, fields)
	if *topN > 0 && len(groups) > *topN {
		// Report sorts by key; re-rank by flow count for top-N.
		sortByFlows(groups)
		groups = groups[:*topN]
	}

	tab := stats.Table{
		Title:   fmt.Sprintf("%d flows, %d groups (grouped by %s)", len(recs), len(groups), *groupSpec),
		Columns: []string{"group", "flows", "packets", "bytes", "duration", "avg bps", "avg pps"},
	}
	for _, g := range groups {
		tab.AddRow(g.Key,
			fmt.Sprintf("%d", g.Flows),
			fmt.Sprintf("%d", g.Packets),
			fmt.Sprintf("%d", g.Bytes),
			g.Duration.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", g.AvgBitRate),
			fmt.Sprintf("%.1f", g.AvgPktRate))
	}
	fmt.Println(tab.String())
	return nil
}

func loadFlows(storeFile, archiveDir, asciiFile string) ([]flow.Record, error) {
	switch {
	case storeFile != "":
		f, err := os.Open(storeFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		sr, err := flowtools.NewStoreReader(f)
		if err != nil {
			return nil, err
		}
		return sr.ReadAll()
	case archiveDir != "":
		return flowtools.ReadArchive(archiveDir)
	case asciiFile != "":
		f, err := os.Open(asciiFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return flowtools.ReadASCII(f)
	default:
		return nil, fmt.Errorf("one of -store, -archive or -ascii is required")
	}
}

var groupFieldByName = map[string]flowtools.GroupField{
	"ip-source-address":      flowtools.GroupSrcAddr,
	"ip-destination-address": flowtools.GroupDstAddr,
	"ip-protocol":            flowtools.GroupProto,
	"ip-source-port":         flowtools.GroupSrcPort,
	"ip-destination-port":    flowtools.GroupDstPort,
	"ip-tos":                 flowtools.GroupTOS,
	"input-interface":        flowtools.GroupInputIf,
	"source-as":              flowtools.GroupSrcAS,
	"destination-as":         flowtools.GroupDstAS,
}

func parseGroupFields(spec string) ([]flowtools.GroupField, error) {
	var out []flowtools.GroupField
	for _, part := range strings.Split(spec, ",") {
		name := strings.TrimSpace(part)
		f, ok := groupFieldByName[name]
		if !ok {
			return nil, fmt.Errorf("unknown group field %q", name)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty group spec")
	}
	return out, nil
}

func sortByFlows(groups []flowtools.GroupStats) {
	for i := 1; i < len(groups); i++ {
		for j := i; j > 0 && groups[j].Flows > groups[j-1].Flows; j-- {
			groups[j], groups[j-1] = groups[j-1], groups[j]
		}
	}
}
