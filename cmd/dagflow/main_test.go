package main

import (
	"os"
	"path/filepath"
	"testing"

	"infilter/internal/blocks"
	"infilter/internal/packet"
	"infilter/internal/trace"
)

func TestParseBlocksNotationRange(t *testing.T) {
	prefixes, err := parseBlocks("1a-13d")
	if err != nil {
		t.Fatal(err)
	}
	if len(prefixes) != 100 {
		t.Fatalf("1a-13d spans %d sub-blocks, want 100", len(prefixes))
	}
	if prefixes[0] != blocks.MustParseNotation("1a").Prefix() {
		t.Errorf("first prefix %v", prefixes[0])
	}
	if prefixes[99] != blocks.MustParseNotation("13d").Prefix() {
		t.Errorf("last prefix %v", prefixes[99])
	}
}

func TestParseBlocksSingle(t *testing.T) {
	prefixes, err := parseBlocks("25g")
	if err != nil {
		t.Fatal(err)
	}
	if len(prefixes) != 1 || prefixes[0] != blocks.MustParseNotation("25g").Prefix() {
		t.Errorf("parseBlocks(25g) = %v", prefixes)
	}
}

func TestParseBlocksCIDRList(t *testing.T) {
	prefixes, err := parseBlocks("61.0.0.0/11, 70.0.0.0/11")
	if err != nil {
		t.Fatal(err)
	}
	if len(prefixes) != 2 {
		t.Fatalf("%d prefixes", len(prefixes))
	}
}

func TestParseBlocksErrors(t *testing.T) {
	for _, in := range []string{"zzz", "13d-1a", "61.0.0.0/99", "1a-9x"} {
		if _, err := parseBlocks(in); err == nil {
			t.Errorf("parseBlocks(%q): want error", in)
		}
	}
	if got, err := parseBlocks(""); err != nil || got != nil {
		t.Errorf("empty parseBlocks = %v, %v", got, err)
	}
}

func TestAttackByName(t *testing.T) {
	for _, info := range trace.AllAttacks() {
		at, err := attackByName(info.Name)
		if err != nil || at != info.Type {
			t.Errorf("attackByName(%q) = %v, %v", info.Name, at, err)
		}
	}
	if _, err := attackByName("nope"); err == nil {
		t.Error("unknown attack: want error")
	}
}

func TestBuildTraceGenerateAndWrite(t *testing.T) {
	pkts, err := buildTrace(50, "", "", "1a-1b", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) < 50 {
		t.Fatalf("generated %d packets", len(pkts))
	}
	path := filepath.Join(t.TempDir(), "cap.iftr")
	if err := writeTrace(path, pkts); err != nil {
		t.Fatal(err)
	}
	// Replaying the captured trace yields identical packets.
	back, err := buildTrace(0, "", path, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pkts) {
		t.Fatalf("replayed %d packets, want %d", len(back), len(pkts))
	}
	for i := range pkts {
		if back[i] != pkts[i] {
			t.Fatalf("packet %d differs after capture round trip", i)
		}
	}
}

func TestBuildTraceAttack(t *testing.T) {
	pkts, err := buildTrace(0, "slammer", "", "", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) == 0 {
		t.Fatal("no attack packets")
	}
	for _, p := range pkts {
		if p.DstPort != 1434 {
			t.Fatalf("slammer packet to port %d", p.DstPort)
		}
	}
}

func TestBuildTraceNothing(t *testing.T) {
	pkts, err := buildTrace(0, "", "", "", 0)
	if err != nil || pkts != nil {
		t.Errorf("empty buildTrace = %v, %v", pkts, err)
	}
}

func TestWriteTraceBadPath(t *testing.T) {
	err := writeTrace(filepath.Join(string(os.PathSeparator), "no", "such", "dir", "x.iftr"), []packet.Packet{{}})
	if err == nil {
		t.Error("writeTrace to bad path: want error")
	}
}
