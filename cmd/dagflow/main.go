// Command dagflow replays traffic as flow-export datagrams (NetFlow v5,
// v9 or IPFIX), reimplementing the paper's Dagflow tool (§6.1). It either
// generates synthetic normal traffic or replays a captured trace file,
// optionally rewrites source addresses (block re-homing or spoofing), and
// sends the resulting datagrams to a UDP destination.
//
// Examples:
//
//	dagflow -generate 1000 -src-blocks 1a-13d -target 127.0.0.1:5001
//	dagflow -attack slammer -spoof-blocks 13e-25h -target 127.0.0.1:5001
//	dagflow -trace capture.iftr -target 127.0.0.1:5001
//	dagflow -generate 1000 -version 9 -template-delay 3 -target 127.0.0.1:5001
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"infilter/internal/blocks"
	"infilter/internal/dagflow"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/packet"
	"infilter/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		generate    = flag.Int("generate", 0, "generate N synthetic normal flows")
		attackFlag  = flag.String("attack", "", "generate one attack instance (puke, jolt, teardrop, slammer, tfn2k, synflood, idlescan, netscan, http-exploit, ftp-exploit, smtp-exploit, dns-exploit)")
		traceFile   = flag.String("trace", "", "replay a trace file instead of generating")
		srcBlocks   = flag.String("src-blocks", "", "sub-block range (e.g. 1a-13d) or CIDR list for benign sources")
		spoofBlocks = flag.String("spoof-blocks", "", "sub-block range or CIDR list to spoof sources from")
		target      = flag.String("target", "127.0.0.1:5001", "UDP destination for NetFlow datagrams")
		inputIf     = flag.Int("input-if", 1, "ifIndex stamped on exported flows")
		seed        = flag.Int64("seed", 1, "PRNG seed")
		name        = flag.String("name", "S1", "instance name")
		writeFile   = flag.String("write", "", "capture the generated trace to this file instead of replaying")
		version     = flag.Int("version", 5, "flow-export wire format: 5 (NetFlow v5), 9 (NetFlow v9) or 10 (IPFIX)")
		tplDelay    = flag.Int("template-delay", 0, "v9/IPFIX: withhold the template until this many data datagrams were sent")
	)
	flag.Parse()
	switch *version {
	case netflow.VersionV5, netflow.VersionV9, netflow.VersionIPFIX:
	default:
		return fmt.Errorf("unsupported -version %d (want 5, 9 or 10)", *version)
	}

	pkts, err := buildTrace(*generate, *attackFlag, *traceFile, *srcBlocks, *seed)
	if err != nil {
		return err
	}
	if len(pkts) == 0 {
		return fmt.Errorf("nothing to replay: use -generate, -attack or -trace")
	}
	if *writeFile != "" {
		if err := writeTrace(*writeFile, pkts); err != nil {
			return err
		}
		log.Printf("wrote %d packets to %s", len(pkts), *writeFile)
		return nil
	}

	var policy dagflow.SourcePolicy
	if *spoofBlocks != "" {
		prefixes, err := parseBlocks(*spoofBlocks)
		if err != nil {
			return err
		}
		policy, err = dagflow.NewSpoofPolicy(prefixes, *seed)
		if err != nil {
			return err
		}
	}

	inst := dagflow.New(dagflow.Config{
		Name:          *name,
		Policy:        policy,
		InputIf:       uint16(*inputIf),
		Version:       uint16(*version),
		TemplateDelay: *tplDelay,
	}, pkts[0].Time.Add(-time.Minute))
	dgs, err := inst.Replay(pkts)
	if err != nil {
		return err
	}
	if err := dagflow.SendUDP(*target, dgs); err != nil {
		return err
	}
	total := 0
	for _, d := range dgs {
		total += d.Flows
	}
	log.Printf("%s: replayed %d packets as %d v%d flows in %d datagrams to %s",
		*name, len(pkts), total, inst.Version(), len(dgs), *target)
	return nil
}

func buildTrace(generate int, attack, traceFile, srcBlocks string, seed int64) ([]packet.Packet, error) {
	start := time.Now().UTC()
	switch {
	case traceFile != "":
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, err := packet.NewTraceReader(f)
		if err != nil {
			return nil, err
		}
		return tr.ReadAll()
	case attack != "":
		at, err := attackByName(attack)
		if err != nil {
			return nil, err
		}
		return trace.Generate(at, trace.AttackConfig{
			Seed:      seed,
			Start:     start,
			Src:       netaddr.MustParseAddr("198.51.100.1"),
			DstPrefix: netaddr.MustParsePrefix("192.0.2.0/24"),
		})
	case generate > 0:
		prefixes, err := parseBlocks(srcBlocks)
		if err != nil {
			return nil, err
		}
		if len(prefixes) == 0 {
			prefixes = []netaddr.Prefix{netaddr.MustParsePrefix("0.0.0.0/1")}
		}
		return trace.GenerateNormal(trace.NormalConfig{
			Seed:        seed,
			Start:       start,
			Flows:       generate,
			SrcPrefixes: prefixes,
			DstPrefix:   netaddr.MustParsePrefix("192.0.2.0/24"),
		})
	default:
		return nil, nil
	}
}

// writeTrace captures packets into a trace file for later replay.
func writeTrace(path string, pkts []packet.Packet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	tw, err := packet.NewTraceWriter(f)
	if err != nil {
		f.Close()
		return err
	}
	for _, p := range pkts {
		if err := tw.Write(p); err != nil {
			f.Close()
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func attackByName(name string) (trace.AttackType, error) {
	for _, info := range trace.AllAttacks() {
		if info.Name == name {
			return info.Type, nil
		}
	}
	return 0, fmt.Errorf("unknown attack %q", name)
}

// parseBlocks accepts either a paper-notation sub-block range ("1a-13d"),
// a single sub-block ("25g"), or a comma-separated CIDR list.
func parseBlocks(s string) ([]netaddr.Prefix, error) {
	if s == "" {
		return nil, nil
	}
	if strings.ContainsRune(s, '/') {
		var out []netaddr.Prefix
		for _, part := range strings.Split(s, ",") {
			p, err := netaddr.ParsePrefix(strings.TrimSpace(part))
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
		return out, nil
	}
	bounds := strings.SplitN(s, "-", 2)
	first, err := blocks.ParseNotation(strings.TrimSpace(bounds[0]))
	if err != nil {
		return nil, err
	}
	last := first
	if len(bounds) == 2 {
		last, err = blocks.ParseNotation(strings.TrimSpace(bounds[1]))
		if err != nil {
			return nil, err
		}
	}
	if last.Index() < first.Index() {
		return nil, fmt.Errorf("inverted sub-block range %q", s)
	}
	var out []netaddr.Prefix
	for _, sb := range blocks.Range(first.Index(), last.Index()+1) {
		out = append(out, sb.Prefix())
	}
	return out, nil
}
