// Command alertui is the IDMEF consumer of paper §5.1.4: it listens for
// IDMEF alerts from infilterd and prints them as they arrive, providing
// the "visual notification of attacks in their initial stages" role of
// the prototype's Alert User Interface.
//
// Usage:
//
//	alertui -port 6000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"infilter/internal/idmef"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	port := flag.Int("port", 6000, "TCP port to receive IDMEF alerts on")
	flag.Parse()

	var count atomic.Int64
	consumer := idmef.NewConsumer(func(a idmef.Alert) {
		n := count.Add(1)
		fmt.Printf("[%4d] %s  %-14s  peerAS=%-2d  %s:%d -> %s:%d  %s  dist=%d\n",
			n, a.CreateTime.Format("15:04:05.000"), a.Assessment.Stage,
			a.Assessment.PeerAS,
			a.Source.Address, a.Source.Port,
			a.Target.Address, a.Target.Port,
			a.Classification.Text, a.Assessment.Distance)
	})
	bound, err := consumer.Listen(*port)
	if err != nil {
		return err
	}
	defer consumer.Close()
	log.Printf("alert UI listening on tcp/%d", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("received %d alerts total", count.Load())
	return nil
}
