package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"infilter/internal/flow"
	"infilter/internal/idmef"
	"infilter/internal/testutil"
)

// startDaemonAdmin is startDaemon plus the admin address.
func startDaemonAdmin(t *testing.T, args []string) (ports []int, admin string, cancel context.CancelFunc, done chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	type readyInfo struct {
		ports []int
		admin string
	}
	ready := make(chan readyInfo, 1)
	done = make(chan error, 1)
	go func() {
		done <- runWith(ctx, args, func(p []int, a string) { ready <- readyInfo{ports: p, admin: a} })
	}()
	select {
	case info := <-ready:
		return info.ports, info.admin, cancel, done
	case err := <-done:
		cancel()
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	return nil, "", nil, nil
}

// TestBatchedShutdownDrainsPartialBatch is the SIGTERM-mid-batch drain
// test: with a batch size far above the traffic and a batch-timeout that
// never fires during the test, the decoded records sit in a reader's
// partially filled batch when shutdown starts. The drain must deliver
// that partial batch through the pipeline — every spoofed record still
// produces its alert before run returns.
func TestBatchedShutdownDrainsPartialBatch(t *testing.T) {
	var alerts atomic.Int64
	consumer := idmef.NewConsumer(func(idmef.Alert) { alerts.Add(1) })
	alertPort, err := consumer.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()

	eiaPath := filepath.Join(t.TempDir(), "eia.txt")
	if err := os.WriteFile(eiaPath, []byte("1 61.0.0.0/11\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{
		"-ports", "0", "-mode", "BI",
		"-alert", fmt.Sprintf("127.0.0.1:%d", alertPort),
		"-admin-addr", "127.0.0.1:0",
		"-eia-file", eiaPath,
		"-batch-size", "4096", "-batch-timeout", "30m",
		"-stats", "1h", "-queue-depth", "64",
	}

	const perDatagram = 10
	const total = int64(2 * perDatagram)

	testutil.ExpectNoGoroutineGrowth(t, func() {
		tr := &http.Transport{}
		defer tr.CloseIdleConnections()
		ports, admin, cancel, done := startDaemonAdmin(t, args)
		defer cancel()
		base := "http://" + admin

		for i := 0; i < 2; i++ {
			var recs []flow.Record
			for j := 0; j < perDatagram; j++ {
				recs = append(recs, testRec(fmt.Sprintf("99.0.%d.%d", i, j+1), 1, 404, flow.ProtoUDP, 1434))
			}
			sendRaw(t, ports[0], v5Raw(t, recs))
		}

		// Wait until the reader has decoded everything; nothing may have
		// reached the pipeline yet (the batch is far from full and the
		// timeout is half an hour away).
		deadline := time.Now().Add(10 * time.Second)
		var m map[string]float64
		for {
			m = scrapeAdmin(t, tr, base+"/metrics")
			if sumMetric(m, "infilter_collector_records_total") >= float64(total) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("decoded %v records, want %d",
					sumMetric(m, "infilter_collector_records_total"), total)
			}
			time.Sleep(2 * time.Millisecond)
		}
		if got := sumMetric(m, "infilter_ingest_batch_records_count"); got != 0 {
			t.Errorf("batches delivered before shutdown = %v, want 0 (batch should still be filling)", got)
		}
		if got := alerts.Load(); got != 0 {
			t.Errorf("alerts before shutdown = %d, want 0", got)
		}

		tr.CloseIdleConnections()
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v after cancel", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("run did not return after cancel")
		}
		// The drain delivered the partial batch and the sender flushed
		// before run returned; the TCP consumer may lag a beat.
		deadline = time.Now().Add(10 * time.Second)
		for alerts.Load() < total {
			if time.Now().After(deadline) {
				t.Fatalf("drain produced %d alerts, want %d (partial batch dropped on shutdown)",
					alerts.Load(), total)
			}
			time.Sleep(2 * time.Millisecond)
		}
	})
}

// TestAdminMetricsBatchedIngest scrapes the infilter_ingest_* families
// of the batched path: batch-size histogram, flush-reason counters and
// the records/sec gauge, against exactly known traffic. With batch-size
// 8, every 10-record datagram overfills one batch, so batches delivered
// and flush{reason=full} both equal the datagram count.
func TestAdminMetricsBatchedIngest(t *testing.T) {
	var alerts atomic.Int64
	consumer := idmef.NewConsumer(func(idmef.Alert) { alerts.Add(1) })
	alertPort, err := consumer.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()

	eiaPath := filepath.Join(t.TempDir(), "eia.txt")
	if err := os.WriteFile(eiaPath, []byte("1 61.0.0.0/11\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{
		"-ports", "0", "-mode", "BI",
		"-alert", fmt.Sprintf("127.0.0.1:%d", alertPort),
		"-admin-addr", "127.0.0.1:0",
		"-eia-file", eiaPath,
		"-readers", "2", "-batch-size", "8", "-batch-timeout", "5ms",
		"-stats", "1h", "-queue-depth", "64",
	}

	const datagrams, perDatagram = 3, 10
	const total = int64(datagrams * perDatagram)

	testutil.ExpectNoGoroutineGrowth(t, func() {
		tr := &http.Transport{}
		defer tr.CloseIdleConnections()
		ports, admin, cancel, done := startDaemonAdmin(t, args)
		defer cancel()
		base := "http://" + admin

		for i := 0; i < datagrams; i++ {
			var recs []flow.Record
			for j := 0; j < perDatagram; j++ {
				recs = append(recs, testRec(fmt.Sprintf("99.0.%d.%d", i, j+1), 1, 404, flow.ProtoUDP, 1434))
			}
			sendRaw(t, ports[0], v5Raw(t, recs))
		}
		deadline := time.Now().Add(10 * time.Second)
		for alerts.Load() < total {
			if time.Now().After(deadline) {
				t.Fatalf("got %d alerts, want %d", alerts.Load(), total)
			}
			time.Sleep(2 * time.Millisecond)
		}

		m := scrapeAdmin(t, tr, base+"/metrics")
		checks := []struct {
			name string
			want float64
		}{
			{"infilter_collector_records_total", float64(total)},
			{"infilter_pipeline_flows_total", float64(total)},
			{"infilter_ingest_batch_records_count", datagrams},
			{"infilter_ingest_batch_records_sum", float64(total)},
			{`infilter_ingest_batch_flushes_total{reason="full"}`, datagrams},
			{`infilter_ingest_batch_flushes_total{reason="timeout"}`, 0},
			{"infilter_eia_misses_total", float64(total)},
		}
		for _, c := range checks {
			if got := sumMetric(m, c.name); got != c.want {
				t.Errorf("%s = %v, want %v", c.name, got, c.want)
			}
		}
		if _, ok := m["infilter_ingest_records_per_second"]; !ok {
			t.Error("missing infilter_ingest_records_per_second gauge")
		}

		tr.CloseIdleConnections()
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v after cancel", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("run did not return after cancel")
		}
	})
}
