package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/flowtools"
	"infilter/internal/idmef"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/testutil"
)

// testRec builds one flow record in the shape the e2e tests replay.
func testRec(src string, packets, bytes uint32, proto uint8, dstPort uint16) flow.Record {
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	return flow.Record{
		Key: flow.Key{
			Src:   netaddr.MustParseAddr(src),
			Dst:   netaddr.MustParseAddr("192.0.2.1"),
			Proto: proto, DstPort: dstPort,
		},
		Packets: packets, Bytes: bytes,
		Start: boot.Add(time.Second), End: boot.Add(2 * time.Second),
	}
}

// v5Raw encodes recs into a single NetFlow v5 datagram.
func v5Raw(t *testing.T, recs []flow.Record) []byte {
	t.Helper()
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	dgs := netflow.NewV5Encoder(boot, 1).Encode(recs, boot.Add(time.Minute))
	if len(dgs) != 1 {
		t.Fatalf("encoded %d datagrams, want 1", len(dgs))
	}
	return dgs[0].Raw
}

// sendRaw writes one datagram to a local UDP port.
func sendRaw(t *testing.T, port int, raw []byte) {
	t.Helper()
	conn, err := net.Dial("udp", fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
}

func TestParsePorts(t *testing.T) {
	got, err := parsePorts("5001, 5002,5003")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 5001 || got[2] != 5003 {
		t.Errorf("parsePorts = %v", got)
	}
	for _, in := range []string{"", "abc", "70000", "-1", "5001,,5002"} {
		if _, err := parsePorts(in); err == nil {
			t.Errorf("parsePorts(%q): want error", in)
		}
	}
}

func TestLoadEIAFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eia.txt")
	content := "# comment\n\n1 61.0.0.0/11\n2 70.0.0.0/11\n1 88.0.0.0/11\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	set := eia.NewSet(eia.Config{})
	if err := loadEIAFile(set, path); err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 {
		t.Errorf("loaded %d prefixes", set.Len())
	}
	if got := set.Check(1, netaddr.MustParseAddr("61.1.1.1")); got != eia.Match {
		t.Errorf("check = %v", got)
	}
	if got := set.Check(1, netaddr.MustParseAddr("70.1.1.1")); got != eia.WrongPeer {
		t.Errorf("check = %v", got)
	}
}

func TestLoadEIAFileErrors(t *testing.T) {
	set := eia.NewSet(eia.Config{})
	if err := loadEIAFile(set, filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file: want error")
	}
	for _, content := range []string{
		"justonefield\n",
		"x 61.0.0.0/11\n",
		"1 notacidr\n",
	} {
		path := filepath.Join(t.TempDir(), "bad.txt")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := loadEIAFile(set, path); err == nil {
			t.Errorf("loadEIAFile(%q): want error", content)
		}
	}
}

// TestRunShutdownDrainsAndFlushes drives the daemon end to end on ephemeral
// ports and exercises the SIGTERM-equivalent path: cancel the context, then
// require that run returns cleanly, every submitted flow produced its alert,
// and the capture archive was flushed to disk (readable, complete).
func TestRunShutdownDrainsAndFlushes(t *testing.T) {
	var alerts atomic.Int64
	consumer := idmef.NewConsumer(func(idmef.Alert) { alerts.Add(1) })
	alertPort, err := consumer.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()

	captureDir := t.TempDir()
	eiaPath := filepath.Join(t.TempDir(), "eia.txt")
	if err := os.WriteFile(eiaPath, []byte("1 61.0.0.0/11\n2 70.0.0.0/11\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// BI mode with preloaded EIA sets: flows from 99.0.0.0/8 are Unknown to
	// both peers, so every record becomes exactly one attack alert.
	args := []string{
		"-ports", "0,0", "-mode", "BI",
		"-alert", fmt.Sprintf("127.0.0.1:%d", alertPort),
		"-capture", captureDir, "-eia-file", eiaPath,
		"-stats", "1h", "-workers", "2", "-queue-depth", "64",
	}

	const datagrams, perDatagram = 3, 10
	const total = int64(datagrams * perDatagram)
	testutil.ExpectNoGoroutineGrowth(t, func() {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		ready := make(chan []int, 1)
		done := make(chan error, 1)
		go func() { done <- runWith(ctx, args, func(ports []int, _ string) { ready <- ports }) }()

		var ports []int
		select {
		case ports = <-ready:
		case err := <-done:
			t.Fatalf("run exited before ready: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never became ready")
		}
		if len(ports) != 2 {
			t.Fatalf("bound %d ports, want 2", len(ports))
		}

		for i := 0; i < datagrams; i++ {
			var recs []flow.Record
			for j := 0; j < perDatagram; j++ {
				recs = append(recs, testRec(fmt.Sprintf("99.0.%d.%d", i, j+1), 1, 404, flow.ProtoUDP, 1434))
			}
			sendRaw(t, ports[i%len(ports)], v5Raw(t, recs))
		}

		deadline := time.Now().Add(10 * time.Second)
		for alerts.Load() < total {
			if time.Now().After(deadline) {
				t.Fatalf("got %d alerts, want %d", alerts.Load(), total)
			}
			time.Sleep(2 * time.Millisecond)
		}

		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v after cancel", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("run did not return after cancel")
		}
	})

	recs, err := flowtools.ReadArchive(captureDir)
	if err != nil {
		t.Fatalf("archive not readable after shutdown: %v", err)
	}
	if int64(len(recs)) != total {
		t.Errorf("archive has %d records, want %d", len(recs), total)
	}
}

// parsePromText parses a Prometheus text exposition into series → value,
// keyed by the full sample name including labels.
func parsePromText(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("bad metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad metrics line %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// sumMetric totals every series of one family across its labels.
func sumMetric(m map[string]float64, name string) float64 {
	var sum float64
	for k, v := range m {
		if k == name || strings.HasPrefix(k, name+"{") {
			sum += v
		}
	}
	return sum
}

func scrapeAdmin(t *testing.T, tr *http.Transport, url string) map[string]float64 {
	t.Helper()
	resp, err := (&http.Client{Transport: tr}).Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return parsePromText(t, string(body))
}

// TestAdminMetricsEndToEnd replays flows over real UDP into a daemon
// with the admin endpoint enabled, then scrapes /metrics and requires
// the collector, per-shard pipeline, EIA and alert-sink counters to be
// consistent with the alerts the TCP consumer actually observed.
func TestAdminMetricsEndToEnd(t *testing.T) {
	var alerts atomic.Int64
	consumer := idmef.NewConsumer(func(idmef.Alert) { alerts.Add(1) })
	alertPort, err := consumer.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()

	eiaPath := filepath.Join(t.TempDir(), "eia.txt")
	if err := os.WriteFile(eiaPath, []byte("1 61.0.0.0/11\n2 70.0.0.0/11\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{
		"-ports", "0,0", "-mode", "BI",
		"-alert", fmt.Sprintf("127.0.0.1:%d", alertPort),
		"-admin-addr", "127.0.0.1:0",
		"-eia-file", eiaPath,
		"-stats", "1h", "-workers", "2", "-queue-depth", "64",
	}

	const spoofDatagrams, perDatagram = 3, 10
	const spoofed = int64(spoofDatagrams * perDatagram)
	const legal = int64(perDatagram)
	const total = spoofed + legal

	testutil.ExpectNoGoroutineGrowth(t, func() {
		tr := &http.Transport{}
		defer tr.CloseIdleConnections()

		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		type readyInfo struct {
			ports []int
			admin string
		}
		ready := make(chan readyInfo, 1)
		done := make(chan error, 1)
		go func() {
			done <- runWith(ctx, args, func(ports []int, admin string) {
				ready <- readyInfo{ports: ports, admin: admin}
			})
		}()

		var info readyInfo
		select {
		case info = <-ready:
		case err := <-done:
			t.Fatalf("run exited before ready: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never became ready")
		}
		if info.admin == "" {
			t.Fatal("no admin address reported")
		}
		base := "http://" + info.admin

		if resp, err := (&http.Client{Transport: tr}).Get(base + "/healthz"); err != nil {
			t.Fatalf("healthz: %v", err)
		} else {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("healthz = %d before shutdown", resp.StatusCode)
			}
		}

		// One datagram of legal flows for peer 1 (EIA hits, no alerts).
		var legalRecs []flow.Record
		for j := 0; j < perDatagram; j++ {
			legalRecs = append(legalRecs, testRec(fmt.Sprintf("61.0.7.%d", j+1), 9, 4040, flow.ProtoTCP, 80))
		}
		sendRaw(t, info.ports[0], v5Raw(t, legalRecs))
		// Spoofed datagrams (99/8 is in no EIA set: one alert per record).
		for i := 0; i < spoofDatagrams; i++ {
			var recs []flow.Record
			for j := 0; j < perDatagram; j++ {
				recs = append(recs, testRec(fmt.Sprintf("99.0.%d.%d", i, j+1), 1, 404, flow.ProtoUDP, 1434))
			}
			sendRaw(t, info.ports[i%len(info.ports)], v5Raw(t, recs))
		}
		// One malformed datagram: counted, dropped, no records.
		sendRaw(t, info.ports[0], []byte("not netflow"))

		deadline := time.Now().Add(10 * time.Second)
		for alerts.Load() < spoofed {
			if time.Now().After(deadline) {
				t.Fatalf("got %d alerts, want %d", alerts.Load(), spoofed)
			}
			time.Sleep(2 * time.Millisecond)
		}

		// The legal flows race the alert wait; poll the scrape until every
		// record has been analyzed.
		var m map[string]float64
		for {
			m = scrapeAdmin(t, tr, base+"/metrics")
			if sumMetric(m, "infilter_pipeline_flows_total") >= float64(total) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("pipeline analyzed %v flows, want %d",
					sumMetric(m, "infilter_pipeline_flows_total"), total)
			}
			time.Sleep(2 * time.Millisecond)
		}

		checks := []struct {
			name string
			want float64
		}{
			{"infilter_collector_datagrams_total", float64(spoofDatagrams + 2)},
			{"infilter_collector_records_total", float64(total)},
			{"infilter_collector_decode_errors_total", 1},
			{"infilter_pipeline_flows_total", float64(total)},
			{"infilter_eia_hits_total", float64(legal)},
			{"infilter_eia_misses_total", float64(spoofed)},
			{"infilter_alerts_sent_total", float64(alerts.Load())},
			{"infilter_pipeline_stage_latency_seconds_count", float64(total)},
		}
		for _, c := range checks {
			if got := sumMetric(m, c.name); got != c.want {
				t.Errorf("%s = %v, want %v", c.name, got, c.want)
			}
		}
		// Per-shard series exist for both workers.
		for _, shard := range []string{"0", "1"} {
			for _, name := range []string{
				`infilter_pipeline_flows_total{shard="` + shard + `"}`,
				`infilter_pipeline_queue_depth{shard="` + shard + `"}`,
				`infilter_pipeline_enqueue_blocks_total{shard="` + shard + `"}`,
			} {
				if _, ok := m[name]; !ok {
					t.Errorf("missing per-shard series %s", name)
				}
			}
		}

		tr.CloseIdleConnections()
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v after cancel", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("run did not return after cancel")
		}
	})
}

// TestNetFlowV9IngestEndToEnd is the acceptance test for the template-
// driven ingest path: a v9 stream is replayed over real UDP with the
// template datagram deliberately withheld until after the data sets, and
// one data datagram dropped in flight. The daemon must buffer the orphan
// sets, resolve and process every delivered flow once the template
// arrives, and the /metrics scrape must show the template learned, the
// orphans buffered and resolved, and the sequence gap from the drop.
func TestNetFlowV9IngestEndToEnd(t *testing.T) {
	var alerts atomic.Int64
	consumer := idmef.NewConsumer(func(idmef.Alert) { alerts.Add(1) })
	alertPort, err := consumer.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()

	eiaPath := filepath.Join(t.TempDir(), "eia.txt")
	if err := os.WriteFile(eiaPath, []byte("1 61.0.0.0/11\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{
		"-ports", "0", "-mode", "BI",
		"-alert", fmt.Sprintf("127.0.0.1:%d", alertPort),
		"-admin-addr", "127.0.0.1:0",
		"-eia-file", eiaPath,
		"-stats", "1h", "-queue-depth", "64",
	}

	const batches, perBatch = 4, 10
	const dropped = 1 // one data datagram lost in flight
	const delivered = int64((batches - dropped) * perBatch)

	testutil.ExpectNoGoroutineGrowth(t, func() {
		tr := &http.Transport{}
		defer tr.CloseIdleConnections()

		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		type readyInfo struct {
			ports []int
			admin string
		}
		ready := make(chan readyInfo, 1)
		done := make(chan error, 1)
		go func() {
			done <- runWith(ctx, args, func(ports []int, admin string) {
				ready <- readyInfo{ports: ports, admin: admin}
			})
		}()
		var info readyInfo
		select {
		case info = <-ready:
		case err := <-done:
			t.Fatalf("run exited before ready: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never became ready")
		}
		base := "http://" + info.admin

		// Encode 4 data datagrams with the template withheld, then flush
		// the template datagram the encoder owes.
		boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
		now := boot.Add(time.Minute)
		enc := netflow.NewV9Encoder(boot, 7)
		enc.SetTemplateDelay(1000)
		var data [][]byte
		for i := 0; i < batches; i++ {
			var recs []flow.Record
			for j := 0; j < perBatch; j++ {
				recs = append(recs, testRec(fmt.Sprintf("99.0.%d.%d", i, j+1), 1, 404, flow.ProtoUDP, 1434))
			}
			dgs := enc.Encode(recs, now)
			if len(dgs) != 1 {
				t.Fatalf("batch %d encoded into %d datagrams, want 1", i, len(dgs))
			}
			data = append(data, dgs[0].Raw)
		}
		tpl := enc.Flush(now)
		if len(tpl) != 1 {
			t.Fatalf("flush produced %d datagrams, want the withheld template", len(tpl))
		}

		// Template cache state is keyed by exporter address, so the whole
		// stream must leave one socket. Drop datagram 2 to force a
		// sequence gap; send the template last so every data set orphans.
		conn, err := net.Dial("udp", fmt.Sprintf("127.0.0.1:%d", info.ports[0]))
		if err != nil {
			t.Fatal(err)
		}
		for i, raw := range data {
			if i == 2 {
				continue
			}
			if _, err := conn.Write(raw); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := conn.Write(tpl[0].Raw); err != nil {
			t.Fatal(err)
		}
		conn.Close()

		// Every delivered flow is spoofed (99/8 in no EIA set): one alert
		// each, and none of them can fire before the template resolves the
		// buffered sets.
		deadline := time.Now().Add(10 * time.Second)
		for alerts.Load() < delivered {
			if time.Now().After(deadline) {
				t.Fatalf("got %d alerts, want %d", alerts.Load(), delivered)
			}
			time.Sleep(2 * time.Millisecond)
		}

		m := scrapeAdmin(t, tr, base+"/metrics")
		checks := []struct {
			name string
			want float64
		}{
			{`infilter_netflow_datagrams_total{version="9"}`, batches - dropped + 1}, // + template datagram
			{"infilter_netflow_templates_learned_total", 1},
			{"infilter_netflow_orphans_buffered_total", batches - dropped},
			{"infilter_netflow_orphans_resolved_total", batches - dropped},
			{"infilter_netflow_sequence_gaps_total", dropped},
			{"infilter_collector_records_total", float64(delivered)},
			{"infilter_collector_decode_errors_total", 0},
		}
		for _, c := range checks {
			if got := sumMetric(m, c.name); got != c.want {
				t.Errorf("%s = %v, want %v", c.name, got, c.want)
			}
		}

		tr.CloseIdleConnections()
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v after cancel", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("run did not return after cancel")
		}
	})
}

// startDaemon launches runWith in the background and waits for readiness,
// returning the bound ports, a cancel that initiates shutdown, and the
// done channel carrying run's error.
func startDaemon(t *testing.T, args []string) (ports []int, cancel context.CancelFunc, done chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan []int, 1)
	done = make(chan error, 1)
	go func() { done <- runWith(ctx, args, func(p []int, _ string) { ready <- p }) }()
	select {
	case ports = <-ready:
	case err := <-done:
		cancel()
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	return ports, cancel, done
}

func stopDaemon(t *testing.T, cancel context.CancelFunc, done chan error) {
	t.Helper()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after cancel", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after cancel")
	}
}

// TestWarmRestartReproducesVerdicts is the acceptance test for -state-dir:
// a daemon started with preloaded EIA sets and a state dir is driven with a
// trace of legal and spoofed flows, terminated, and restarted WITHOUT the
// EIA preload. The restarted daemon must reproduce the pre-restart verdict
// pattern on the replayed trace — legal sources stay silent, spoofed
// sources alert — which is only possible if the EIA state survived through
// the checkpoint flushed during the shutdown drain.
func TestWarmRestartReproducesVerdicts(t *testing.T) {
	var alerts atomic.Int64
	consumer := idmef.NewConsumer(func(idmef.Alert) { alerts.Add(1) })
	alertPort, err := consumer.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()

	stateDir := t.TempDir()
	eiaPath := filepath.Join(t.TempDir(), "eia.txt")
	if err := os.WriteFile(eiaPath, []byte("1 61.0.0.0/11\n2 70.0.0.0/11\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	base := []string{
		"-ports", "0,0", "-mode", "BI",
		"-alert", fmt.Sprintf("127.0.0.1:%d", alertPort),
		"-state-dir", stateDir, "-checkpoint-interval", "1h",
		"-stats", "1h", "-workers", "2", "-queue-depth", "64",
	}

	const perDatagram = 10
	const spoofed = int64(2 * perDatagram)

	// replay sends one datagram of legal peer-1 flows (61/11, in peer 1's
	// EIA set) and two of spoofed flows (99/8, in no set), then waits for
	// exactly the spoofed alerts.
	replay := func(ports []int, wantAlerts int64) {
		t.Helper()
		var legalRecs []flow.Record
		for j := 0; j < perDatagram; j++ {
			legalRecs = append(legalRecs, testRec(fmt.Sprintf("61.0.7.%d", j+1), 9, 4040, flow.ProtoTCP, 80))
		}
		sendRaw(t, ports[0], v5Raw(t, legalRecs))
		for i := 0; i < 2; i++ {
			var spoofRecs []flow.Record
			for j := 0; j < perDatagram; j++ {
				spoofRecs = append(spoofRecs, testRec(fmt.Sprintf("99.0.%d.%d", i, j+1), 1, 404, flow.ProtoUDP, 1434))
			}
			sendRaw(t, ports[i%len(ports)], v5Raw(t, spoofRecs))
		}
		deadline := time.Now().Add(10 * time.Second)
		for alerts.Load() < wantAlerts {
			if time.Now().After(deadline) {
				t.Fatalf("got %d alerts, want %d", alerts.Load(), wantAlerts)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// First run: EIA preload + state dir. The 1h checkpoint interval never
	// fires during the test, so the state on disk can only come from the
	// shutdown flush.
	ports, cancel, done := startDaemon(t, append([]string{"-eia-file", eiaPath}, base...))
	replay(ports, spoofed)
	stopDaemon(t, cancel, done)
	if _, err := os.Stat(filepath.Join(stateDir, "eia.ckpt")); err != nil {
		t.Fatalf("shutdown flush wrote no EIA checkpoint: %v", err)
	}

	// Restart WITHOUT -eia-file: the verdicts must come from the checkpoint.
	ports, cancel, done = startDaemon(t, base)
	replay(ports, 2*spoofed)
	stopDaemon(t, cancel, done)

	// The drain completed and the alert connection flushed before run
	// returned; give the TCP consumer a beat, then require that the legal
	// flows stayed silent both before and after the restart.
	time.Sleep(200 * time.Millisecond)
	if n := alerts.Load(); n != 2*spoofed {
		t.Errorf("got %d alerts across both runs, want %d (legal flows alerted after restart)", n, 2*spoofed)
	}
}

// TestWarmRestartLoadsDetector proves the NNS side of warm restart: the
// first EI-mode run trains a detector and checkpoints it on shutdown; the
// second run is started with -train-flows 0, which makes training
// impossible (nns.Train rejects an empty training set), so it can only
// become ready by loading nns.ckpt from the state dir.
func TestWarmRestartLoadsDetector(t *testing.T) {
	stateDir := t.TempDir()
	base := []string{
		"-ports", "0", "-mode", "EI",
		"-state-dir", stateDir, "-checkpoint-interval", "1h",
		"-stats", "1h",
	}

	_, cancel, done := startDaemon(t, append([]string{"-train-flows", "500", "-train-seed", "3"}, base...))
	stopDaemon(t, cancel, done)
	if _, err := os.Stat(filepath.Join(stateDir, "nns.ckpt")); err != nil {
		t.Fatalf("shutdown flush wrote no NNS checkpoint: %v", err)
	}

	_, cancel, done = startDaemon(t, append([]string{"-train-flows", "0"}, base...))
	stopDaemon(t, cancel, done)
}

// TestWarmRestartFromV1GoldenCheckpoint seeds the state dir with a
// committed pre-dual-stack (v1) EIA checkpoint — the exact bytes an
// older daemon wrote — and starts WITHOUT -eia-file. The daemon must
// restore its verdict state from the legacy file (legal sources silent,
// spoofed sources alerting), and the shutdown flush must rewrite the
// file in the v2 family-tagged format: upgrade-on-write.
func TestWarmRestartFromV1GoldenCheckpoint(t *testing.T) {
	var alerts atomic.Int64
	consumer := idmef.NewConsumer(func(idmef.Alert) { alerts.Add(1) })
	alertPort, err := consumer.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()

	stateDir := t.TempDir()
	golden, err := os.ReadFile(filepath.Join("testdata", "eia_v1.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stateDir, "eia.ckpt"), golden, 0o644); err != nil {
		t.Fatal(err)
	}

	ports, cancel, done := startDaemon(t, []string{
		"-ports", "0", "-mode", "BI",
		"-alert", fmt.Sprintf("127.0.0.1:%d", alertPort),
		"-state-dir", stateDir, "-checkpoint-interval", "1h",
		"-stats", "1h", "-workers", "2", "-queue-depth", "64",
	})
	const perDatagram = 10
	var legalRecs, spoofRecs []flow.Record
	for j := 0; j < perDatagram; j++ {
		legalRecs = append(legalRecs, testRec(fmt.Sprintf("61.0.9.%d", j+1), 9, 4040, flow.ProtoTCP, 80))
		spoofRecs = append(spoofRecs, testRec(fmt.Sprintf("99.1.0.%d", j+1), 1, 404, flow.ProtoUDP, 1434))
	}
	sendRaw(t, ports[0], v5Raw(t, legalRecs))
	sendRaw(t, ports[0], v5Raw(t, spoofRecs))
	deadline := time.Now().Add(10 * time.Second)
	for alerts.Load() < perDatagram {
		if time.Now().After(deadline) {
			t.Fatalf("got %d alerts, want %d", alerts.Load(), perDatagram)
		}
		time.Sleep(2 * time.Millisecond)
	}
	stopDaemon(t, cancel, done)
	time.Sleep(200 * time.Millisecond)
	if n := alerts.Load(); n != perDatagram {
		t.Errorf("got %d alerts, want %d (legal flows must stay silent off the v1 state)", n, perDatagram)
	}

	upgraded, err := os.ReadFile(filepath.Join(stateDir, "eia.ckpt"))
	if err != nil {
		t.Fatalf("shutdown flush left no EIA checkpoint: %v", err)
	}
	if !strings.HasPrefix(string(upgraded), "# infilter-eia-checkpoint v2\n") {
		t.Errorf("checkpoint not upgraded to v2:\n%s", upgraded)
	}
	for _, row := range []string{"1 4 61.0.0.0/11", "2 4 70.0.0.0/11"} {
		if !strings.Contains(string(upgraded), row+"\n") {
			t.Errorf("upgraded checkpoint missing row %q:\n%s", row, upgraded)
		}
	}
}

// TestRunRejectsBadFlags covers the pre-listen validation paths.
func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "XX"},
		{"-ports", "abc"},
		{"-no-such-flag"},
		{"-eia-file", filepath.Join(t.TempDir(), "missing")},
		{"-batch-size", "-1"},
		{"-batch-timeout", "0s"},
		{"-readers", "2", "-batch-size", "0"},
	} {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}

func TestTrainDetectorSmoke(t *testing.T) {
	d, err := trainDetector(1, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Clusters()) == 0 {
		t.Error("no clusters trained")
	}
}

func TestObtainDetectorTrainsSavesAndLoads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.gob")
	trained, err := obtainDetector(path, 1, 500)
	if err != nil {
		t.Fatal(err)
	}
	if _, statErr := os.Stat(path); statErr != nil {
		t.Fatalf("model not saved: %v", statErr)
	}
	loaded, err := obtainDetector(path, 999, 10) // params ignored on load
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Clusters()) != len(trained.Clusters()) {
		t.Errorf("loaded %d clusters, trained %d", len(loaded.Clusters()), len(trained.Clusters()))
	}
}
