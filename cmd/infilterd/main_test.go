package main

import (
	"os"
	"path/filepath"
	"testing"

	"infilter/internal/eia"
	"infilter/internal/netaddr"
)

func TestParsePorts(t *testing.T) {
	got, err := parsePorts("5001, 5002,5003")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 5001 || got[2] != 5003 {
		t.Errorf("parsePorts = %v", got)
	}
	for _, in := range []string{"", "abc", "70000", "-1", "5001,,5002"} {
		if _, err := parsePorts(in); err == nil {
			t.Errorf("parsePorts(%q): want error", in)
		}
	}
}

func TestLoadEIAFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eia.txt")
	content := "# comment\n\n1 61.0.0.0/11\n2 70.0.0.0/11\n1 88.0.0.0/11\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	set := eia.NewSet(eia.Config{})
	if err := loadEIAFile(set, path); err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 {
		t.Errorf("loaded %d prefixes", set.Len())
	}
	if got := set.Check(1, netaddr.MustParseIPv4("61.1.1.1")); got != eia.Match {
		t.Errorf("check = %v", got)
	}
	if got := set.Check(1, netaddr.MustParseIPv4("70.1.1.1")); got != eia.WrongPeer {
		t.Errorf("check = %v", got)
	}
}

func TestLoadEIAFileErrors(t *testing.T) {
	set := eia.NewSet(eia.Config{})
	if err := loadEIAFile(set, filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file: want error")
	}
	for _, content := range []string{
		"justonefield\n",
		"x 61.0.0.0/11\n",
		"1 notacidr\n",
	} {
		path := filepath.Join(t.TempDir(), "bad.txt")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := loadEIAFile(set, path); err == nil {
			t.Errorf("loadEIAFile(%q): want error", content)
		}
	}
}

func TestTrainDetectorSmoke(t *testing.T) {
	d, err := trainDetector(1, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Clusters()) == 0 {
		t.Error("no clusters trained")
	}
}

func TestObtainDetectorTrainsSavesAndLoads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.gob")
	trained, err := obtainDetector(path, 1, 500)
	if err != nil {
		t.Fatal(err)
	}
	if _, statErr := os.Stat(path); statErr != nil {
		t.Fatalf("model not saved: %v", statErr)
	}
	loaded, err := obtainDetector(path, 999, 10) // params ignored on load
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Clusters()) != len(trained.Clusters()) {
		t.Errorf("loaded %d clusters, trained %d", len(loaded.Clusters()), len(trained.Clusters()))
	}
}
