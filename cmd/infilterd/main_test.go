package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/flowtools"
	"infilter/internal/idmef"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/testutil"
)

func TestParsePorts(t *testing.T) {
	got, err := parsePorts("5001, 5002,5003")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 5001 || got[2] != 5003 {
		t.Errorf("parsePorts = %v", got)
	}
	for _, in := range []string{"", "abc", "70000", "-1", "5001,,5002"} {
		if _, err := parsePorts(in); err == nil {
			t.Errorf("parsePorts(%q): want error", in)
		}
	}
}

func TestLoadEIAFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eia.txt")
	content := "# comment\n\n1 61.0.0.0/11\n2 70.0.0.0/11\n1 88.0.0.0/11\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	set := eia.NewSet(eia.Config{})
	if err := loadEIAFile(set, path); err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 {
		t.Errorf("loaded %d prefixes", set.Len())
	}
	if got := set.Check(1, netaddr.MustParseIPv4("61.1.1.1")); got != eia.Match {
		t.Errorf("check = %v", got)
	}
	if got := set.Check(1, netaddr.MustParseIPv4("70.1.1.1")); got != eia.WrongPeer {
		t.Errorf("check = %v", got)
	}
}

func TestLoadEIAFileErrors(t *testing.T) {
	set := eia.NewSet(eia.Config{})
	if err := loadEIAFile(set, filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file: want error")
	}
	for _, content := range []string{
		"justonefield\n",
		"x 61.0.0.0/11\n",
		"1 notacidr\n",
	} {
		path := filepath.Join(t.TempDir(), "bad.txt")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := loadEIAFile(set, path); err == nil {
			t.Errorf("loadEIAFile(%q): want error", content)
		}
	}
}

// TestRunShutdownDrainsAndFlushes drives the daemon end to end on ephemeral
// ports and exercises the SIGTERM-equivalent path: cancel the context, then
// require that run returns cleanly, every submitted flow produced its alert,
// and the capture archive was flushed to disk (readable, complete).
func TestRunShutdownDrainsAndFlushes(t *testing.T) {
	var alerts atomic.Int64
	consumer := idmef.NewConsumer(func(idmef.Alert) { alerts.Add(1) })
	alertPort, err := consumer.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()

	captureDir := t.TempDir()
	eiaPath := filepath.Join(t.TempDir(), "eia.txt")
	if err := os.WriteFile(eiaPath, []byte("1 61.0.0.0/11\n2 70.0.0.0/11\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// BI mode with preloaded EIA sets: flows from 99.0.0.0/8 are Unknown to
	// both peers, so every record becomes exactly one attack alert.
	args := []string{
		"-ports", "0,0", "-mode", "BI",
		"-alert", fmt.Sprintf("127.0.0.1:%d", alertPort),
		"-capture", captureDir, "-eia-file", eiaPath,
		"-stats", "1h", "-workers", "2", "-queue-depth", "64",
	}

	const datagrams, perDatagram = 3, 10
	const total = int64(datagrams * perDatagram)
	testutil.ExpectNoGoroutineGrowth(t, func() {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		ready := make(chan []int, 1)
		done := make(chan error, 1)
		go func() { done <- runWith(ctx, args, func(ports []int) { ready <- ports }) }()

		var ports []int
		select {
		case ports = <-ready:
		case err := <-done:
			t.Fatalf("run exited before ready: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never became ready")
		}
		if len(ports) != 2 {
			t.Fatalf("bound %d ports, want 2", len(ports))
		}

		for i := 0; i < datagrams; i++ {
			d := &netflow.Datagram{}
			for j := 0; j < perDatagram; j++ {
				d.Records = append(d.Records, netflow.Record{
					SrcAddr: netaddr.MustParseIPv4(fmt.Sprintf("99.0.%d.%d", i, j+1)),
					DstAddr: netaddr.MustParseIPv4("192.0.2.1"),
					Packets: 1, Octets: 404, Proto: flow.ProtoUDP, DstPort: 1434,
				})
			}
			raw, err := d.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			conn, err := net.Dial("udp", fmt.Sprintf("127.0.0.1:%d", ports[i%len(ports)]))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := conn.Write(raw); err != nil {
				t.Fatal(err)
			}
			conn.Close()
		}

		deadline := time.Now().Add(10 * time.Second)
		for alerts.Load() < total {
			if time.Now().After(deadline) {
				t.Fatalf("got %d alerts, want %d", alerts.Load(), total)
			}
			time.Sleep(2 * time.Millisecond)
		}

		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v after cancel", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("run did not return after cancel")
		}
	})

	recs, err := flowtools.ReadArchive(captureDir)
	if err != nil {
		t.Fatalf("archive not readable after shutdown: %v", err)
	}
	if int64(len(recs)) != total {
		t.Errorf("archive has %d records, want %d", len(recs), total)
	}
}

// TestRunRejectsBadFlags covers the pre-listen validation paths.
func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "XX"},
		{"-ports", "abc"},
		{"-no-such-flag"},
		{"-eia-file", filepath.Join(t.TempDir(), "missing")},
	} {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}

func TestTrainDetectorSmoke(t *testing.T) {
	d, err := trainDetector(1, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Clusters()) == 0 {
		t.Error("no clusters trained")
	}
}

func TestObtainDetectorTrainsSavesAndLoads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.gob")
	trained, err := obtainDetector(path, 1, 500)
	if err != nil {
		t.Fatal(err)
	}
	if _, statErr := os.Stat(path); statErr != nil {
		t.Fatalf("model not saved: %v", statErr)
	}
	loaded, err := obtainDetector(path, 999, 10) // params ignored on load
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Clusters()) != len(trained.Clusters()) {
		t.Errorf("loaded %d clusters, trained %d", len(loaded.Clusters()), len(trained.Clusters()))
	}
}
