package main

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"infilter/internal/flow"
	"infilter/internal/idmef"
	"infilter/internal/netflow"
	"infilter/internal/testutil"
)

// ttlRec is testRec with an observed arrival TTL.
func ttlRec(src string, ttl uint8) flow.Record {
	r := testRec(src, 9, 4040, flow.ProtoTCP, 80)
	r.TTL = ttl
	return r
}

// sendIPFIX replays recs to a daemon port as one IPFIX stream from one
// socket (template state is keyed by exporter address).
func sendIPFIX(t *testing.T, port int, recs []flow.Record) {
	t.Helper()
	enc := netflow.NewIPFIXEncoder(7)
	now := time.Date(2005, 4, 1, 0, 1, 0, 0, time.UTC)
	conn, err := net.Dial("udp", fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, wd := range enc.Encode(recs, now) {
		if _, err := conn.Write(wd.Raw); err != nil {
			t.Fatal(err)
		}
	}
}

func waitAlerts(t *testing.T, counter *atomic.Int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for counter.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("got %d ttl-stage alerts, want %d", counter.Load(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestWarmRestartPreservesTTLProfiles is the acceptance test for the
// ttl.ckpt artifact: the first daemon learns a TTL profile for a legal
// /24 (three in-profile flows), catches one TTL-spoofed flow at the
// ttl-profile stage, and checkpoints on the shutdown drain. The
// restarted daemon is sent a SINGLE spoofed flow — below MinSamples for
// a cold profile — so the second ttl-stage alert is only possible if the
// learned profiles came back from the state dir. The whole double
// start/stop cycle runs under the goroutine-leak gate.
func TestWarmRestartPreservesTTLProfiles(t *testing.T) {
	var ttlAlerts atomic.Int64
	consumer := idmef.NewConsumer(func(a idmef.Alert) {
		if a.Assessment.Stage == idmef.StageTTL {
			ttlAlerts.Add(1)
		}
	})
	alertPort, err := consumer.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()

	stateDir := t.TempDir()
	eiaPath := filepath.Join(t.TempDir(), "eia.txt")
	if err := os.WriteFile(eiaPath, []byte("1 61.0.0.0/11\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	base := []string{
		"-ports", "0", "-mode", "EI", "-ttl-tolerance", "2",
		"-train-flows", "400", "-train-seed", "3",
		"-alert", fmt.Sprintf("127.0.0.1:%d", alertPort),
		"-state-dir", stateDir, "-checkpoint-interval", "1h",
		"-stats", "1h", "-workers", "2", "-queue-depth", "64",
	}

	testutil.ExpectNoGoroutineGrowth(t, func() {
		// First run: learn 61.0.7.0/24 at TTL 57, then spoof at TTL 30.
		ports, cancel, done := startDaemon(t, append([]string{"-eia-file", eiaPath}, base...))
		sendIPFIX(t, ports[0], []flow.Record{
			ttlRec("61.0.7.1", 57),
			ttlRec("61.0.7.2", 57),
			ttlRec("61.0.7.3", 57),
			ttlRec("61.0.7.9", 30),
		})
		waitAlerts(t, &ttlAlerts, 1)
		stopDaemon(t, cancel, done)

		ckpt, err := os.ReadFile(filepath.Join(stateDir, "ttl.ckpt"))
		if err != nil {
			t.Fatalf("shutdown flush wrote no TTL checkpoint: %v", err)
		}
		if !strings.HasPrefix(string(ckpt), "# infilter-ttl-checkpoint v1\n") {
			t.Fatalf("unexpected TTL checkpoint header:\n%s", ckpt)
		}

		// Restart without the EIA preload: one spoofed flow cannot build a
		// profile on its own, so this alert proves the warm restart.
		ports, cancel, done = startDaemon(t, base)
		sendIPFIX(t, ports[0], []flow.Record{ttlRec("61.0.7.10", 30)})
		waitAlerts(t, &ttlAlerts, 2)
		stopDaemon(t, cancel, done)
	})
}

// TestWarmRestartFromPreTTLStateDir pins the additive-format contract:
// a state dir written by a daemon that never ran the TTL stage (no
// ttl.ckpt, the layout every pre-TTL version produced) must still warm-
// restart a daemon that has the stage enabled — the stage cold-starts
// and learns from live traffic as if the artifact were simply new.
func TestWarmRestartFromPreTTLStateDir(t *testing.T) {
	var ttlAlerts atomic.Int64
	consumer := idmef.NewConsumer(func(a idmef.Alert) {
		if a.Assessment.Stage == idmef.StageTTL {
			ttlAlerts.Add(1)
		}
	})
	alertPort, err := consumer.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()

	stateDir := t.TempDir()
	eiaPath := filepath.Join(t.TempDir(), "eia.txt")
	if err := os.WriteFile(eiaPath, []byte("1 61.0.0.0/11\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	base := []string{
		"-ports", "0", "-mode", "EI",
		"-train-flows", "400", "-train-seed", "3",
		"-alert", fmt.Sprintf("127.0.0.1:%d", alertPort),
		"-state-dir", stateDir, "-checkpoint-interval", "1h",
		"-stats", "1h", "-workers", "2", "-queue-depth", "64",
	}

	// First run: TTL stage off — the state dir a pre-TTL daemon leaves.
	_, cancel, done := startDaemon(t, append([]string{"-eia-file", eiaPath}, base...))
	stopDaemon(t, cancel, done)
	if _, err := os.Stat(filepath.Join(stateDir, "ttl.ckpt")); !os.IsNotExist(err) {
		t.Fatalf("ttl.ckpt unexpectedly present with the stage disabled: %v", err)
	}

	// Second run: stage enabled against the old layout. It must come up,
	// cold-start the profiles, and detect live like a fresh deployment.
	ports, cancel, done := startDaemon(t, append([]string{"-ttl-tolerance", "2"}, base...))
	sendIPFIX(t, ports[0], []flow.Record{
		ttlRec("61.0.8.1", 57),
		ttlRec("61.0.8.2", 57),
		ttlRec("61.0.8.3", 57),
		ttlRec("61.0.8.9", 30),
	})
	waitAlerts(t, &ttlAlerts, 1)
	stopDaemon(t, cancel, done)
}
