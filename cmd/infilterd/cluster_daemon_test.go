package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"infilter/internal/flow"
	"infilter/internal/idmef"
	"infilter/internal/testutil"
)

// reserveTCPAddr grabs a free loopback TCP address and releases it, so a
// daemon can be started with a concrete -cluster-listen address that
// peers already know.
func reserveTCPAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// clusterStatusDoc mirrors the /cluster JSON shape the tests care about.
type clusterStatusDoc struct {
	Node          string `json:"node"`
	LocalPrefixes int    `json:"local_prefixes"`
	Peers         []struct {
		Addr   string `json:"addr"`
		Up     bool   `json:"up"`
		Errors uint64 `json:"errors"`
	} `json:"peers"`
	Cluster struct {
		Nodes     int  `json:"nodes"`
		PeersUp   int  `json:"peers_up"`
		Converged bool `json:"converged"`
	} `json:"cluster"`
}

// fetchClusterStatus GETs /cluster from a daemon's admin endpoint.
func fetchClusterStatus(adminAddr string) (clusterStatusDoc, error) {
	var doc clusterStatusDoc
	resp, err := http.Get("http://" + adminAddr + "/cluster")
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return doc, fmt.Errorf("/cluster: %s", resp.Status)
	}
	return doc, json.NewDecoder(resp.Body).Decode(&doc)
}

// awaitClusterPrefixes polls /cluster until the daemon holds want EIA
// prefixes.
func awaitClusterPrefixes(t *testing.T, adminAddr string, want int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		doc, err := fetchClusterStatus(adminAddr)
		if err == nil && doc.LocalPrefixes >= want {
			if doc.LocalPrefixes > want {
				t.Fatalf("node %s holds %d prefixes, want %d", doc.Node, doc.LocalPrefixes, want)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("node at %s never reached %d prefixes (last: %+v, err %v)", adminAddr, want, doc, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// startClusterDaemon is startDaemon plus the admin address.
func startClusterDaemon(t *testing.T, args []string) (ports []int, adminAddr string, cancel context.CancelFunc, done chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	type readyInfo struct {
		ports []int
		admin string
	}
	ready := make(chan readyInfo, 1)
	done = make(chan error, 1)
	go func() {
		done <- runWith(ctx, args, func(p []int, a string) { ready <- readyInfo{ports: p, admin: a} })
	}()
	select {
	case r := <-ready:
		return r.ports, r.admin, cancel, done
	case err := <-done:
		cancel()
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	return nil, "", nil, nil
}

func writeEIAFile(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "eia.txt")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestClusterTwoNodeConvergenceMatchesUnionDaemon is the cluster-mode
// acceptance test: two daemons preloaded with different halves of peer
// 1's EIA state replicate snapshots both ways; once /cluster reports
// convergence, a probe stream (one legal source from each half, plus
// spoofed sources) must produce on BOTH nodes exactly the verdict stream
// a single daemon preloaded with the union produces. Replication being
// down-level or divergent would alert on the other node's legal half.
func TestClusterTwoNodeConvergenceMatchesUnionDaemon(t *testing.T) {
	addrA, addrB := reserveTCPAddr(t), reserveTCPAddr(t)
	fileA := writeEIAFile(t, "1 61.0.0.0/11")
	fileB := writeEIAFile(t, "1 88.0.0.0/11")
	fileU := writeEIAFile(t, "1 61.0.0.0/11", "1 88.0.0.0/11")

	// One alert consumer per daemon so verdict streams count separately.
	newConsumer := func() (*atomic.Int64, int) {
		var n atomic.Int64
		c := idmef.NewConsumer(func(idmef.Alert) { n.Add(1) })
		port, err := c.Listen(0)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return &n, port
	}
	alertsA, alertPortA := newConsumer()
	alertsB, alertPortB := newConsumer()
	alertsU, alertPortU := newConsumer()

	base := []string{"-ports", "0", "-mode", "BI", "-stats", "1h", "-admin-addr", "127.0.0.1:0"}
	mk := func(eiaFile string, alertPort int, extra ...string) []string {
		args := append([]string{"-eia-file", eiaFile, "-alert", fmt.Sprintf("127.0.0.1:%d", alertPort)}, base...)
		return append(args, extra...)
	}

	portsA, adminA, cancelA, doneA := startClusterDaemon(t, mk(fileA, alertPortA,
		"-cluster-listen", addrA, "-cluster-peers", addrB, "-replicate-interval", "50ms"))
	defer stopDaemon(t, cancelA, doneA)
	portsB, adminB, cancelB, doneB := startClusterDaemon(t, mk(fileB, alertPortB,
		"-cluster-listen", addrB, "-cluster-peers", addrA, "-replicate-interval", "50ms"))
	defer stopDaemon(t, cancelB, doneB)
	portsU, _, cancelU, doneU := startClusterDaemon(t, mk(fileU, alertPortU))
	defer stopDaemon(t, cancelU, doneU)

	// Both nodes must fold the other's half: 2 prefixes each.
	awaitClusterPrefixes(t, adminA, 2)
	awaitClusterPrefixes(t, adminB, 2)
	docA, err := fetchClusterStatus(adminA)
	if err != nil {
		t.Fatal(err)
	}
	if docA.Cluster.Nodes != 2 || len(docA.Peers) != 1 || !docA.Peers[0].Up {
		t.Errorf("node A cluster status %+v, want 2-node ring with its peer up", docA)
	}

	// Identical probe stream to every daemon: a legal source from A's
	// half, one from B's half, and spoofed sources. BI mode: every
	// non-match alerts, so the alert count IS the verdict stream.
	const spoofedPerDatagram = 10
	probe := func(port int) {
		var legal []flow.Record
		legal = append(legal,
			testRec("61.0.7.1", 9, 4040, flow.ProtoTCP, 80),
			testRec("88.0.7.1", 9, 4040, flow.ProtoTCP, 80))
		sendRaw(t, port, v5Raw(t, legal))
		var spoofed []flow.Record
		for j := 0; j < spoofedPerDatagram; j++ {
			spoofed = append(spoofed, testRec(fmt.Sprintf("99.0.1.%d", j+1), 1, 404, flow.ProtoUDP, 1434))
		}
		sendRaw(t, port, v5Raw(t, spoofed))
	}
	probe(portsA[0])
	probe(portsB[0])
	probe(portsU[0])

	awaitAlerts := func(name string, n *atomic.Int64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for n.Load() < spoofedPerDatagram {
			if time.Now().After(deadline) {
				t.Fatalf("%s: got %d alerts, want %d", name, n.Load(), spoofedPerDatagram)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	awaitAlerts("union daemon", alertsU)
	awaitAlerts("node A", alertsA)
	awaitAlerts("node B", alertsB)
	// Settle, then require the streams to be *identical*: exactly the
	// spoofed flows, nothing from the other node's legal half.
	time.Sleep(200 * time.Millisecond)
	if a, b, u := alertsA.Load(), alertsB.Load(), alertsU.Load(); a != u || b != u || u != spoofedPerDatagram {
		t.Errorf("verdict streams differ: node A %d, node B %d, union %d alerts, want all %d",
			a, b, u, spoofedPerDatagram)
	}

	// The replication series must be live on /metrics.
	resp, err := http.Get("http://" + adminA + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "infilter_cluster_replication_rounds_total") {
		t.Error("/metrics lacks infilter_cluster_replication_rounds_total")
	}
}

// TestClusterPeerDownKeepsLocalVerdicts: a cluster node whose only peer
// never existed keeps classifying local traffic; /cluster reports the
// peer down and accumulating errors.
func TestClusterPeerDownKeepsLocalVerdicts(t *testing.T) {
	deadPeer := reserveTCPAddr(t)
	var alerts atomic.Int64
	consumer := idmef.NewConsumer(func(idmef.Alert) { alerts.Add(1) })
	alertPort, err := consumer.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()

	ports, admin, cancel, done := startClusterDaemon(t, []string{
		"-eia-file", writeEIAFile(t, "1 61.0.0.0/11"),
		"-alert", fmt.Sprintf("127.0.0.1:%d", alertPort),
		"-ports", "0", "-mode", "BI", "-stats", "1h", "-admin-addr", "127.0.0.1:0",
		"-cluster-listen", reserveTCPAddr(t), "-cluster-peers", deadPeer,
		"-replicate-interval", "20ms",
	})
	defer stopDaemon(t, cancel, done)

	// Replication must be failing...
	deadline := time.Now().Add(10 * time.Second)
	for {
		doc, err := fetchClusterStatus(admin)
		if err == nil && len(doc.Peers) == 1 && !doc.Peers[0].Up && doc.Peers[0].Errors > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer never reported down with errors (last: %+v)", doc)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// ...while local verdicts flow unaffected.
	sendRaw(t, ports[0], v5Raw(t, []flow.Record{testRec("99.9.9.9", 1, 404, flow.ProtoUDP, 1434)}))
	deadline = time.Now().Add(10 * time.Second)
	for alerts.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no verdict while the cluster peer is down")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClusterThreeNodeKillOneConverges is the 3-node in-process e2e run
// under the race detector by scripts/check.sh: three daemons form a full
// mesh, each contributing one EIA prefix; one node is killed
// mid-replication once its state has reached at least one survivor, and
// the survivors must still converge to the full 3-way union — dead
// node's state included, relayed transitively through merges — while
// /cluster shows the dead peer down. The whole cycle runs under the
// goroutine-leak gate.
func TestClusterThreeNodeKillOneConverges(t *testing.T) {
	testutil.ExpectNoGoroutineGrowth(t, func() {
		addrs := []string{reserveTCPAddr(t), reserveTCPAddr(t), reserveTCPAddr(t)}
		files := []string{
			writeEIAFile(t, "1 61.0.0.0/11"),
			writeEIAFile(t, "1 70.0.0.0/11"),
			writeEIAFile(t, "1 88.0.0.0/11"),
		}
		admins := make([]string, 3)
		cancels := make([]context.CancelFunc, 3)
		dones := make([]chan error, 3)
		for i := 0; i < 3; i++ {
			peers := make([]string, 0, 2)
			for j, a := range addrs {
				if j != i {
					peers = append(peers, a)
				}
			}
			_, admin, cancel, done := startClusterDaemon(t, []string{
				"-eia-file", files[i],
				"-ports", "0", "-mode", "BI", "-stats", "1h", "-admin-addr", "127.0.0.1:0",
				"-cluster-listen", addrs[i], "-cluster-peers", strings.Join(peers, ","),
				"-replicate-interval", "30ms",
			})
			admins[i] = admin
			cancels[i] = cancel
			dones[i] = done
		}

		// Wait until node 0 has folded everything (including node 2's
		// prefix), then kill node 2 — replication is still running, and
		// node 1 may or may not have node 2's state yet.
		awaitClusterPrefixes(t, admins[0], 3)
		stopDaemon(t, cancels[2], dones[2])

		// Survivors must converge to all 3 prefixes regardless: node 1
		// gets node 2's prefix from node 0's snapshots (merge transitivity).
		awaitClusterPrefixes(t, admins[0], 3)
		awaitClusterPrefixes(t, admins[1], 3)

		// Node 0 must eventually report the dead peer down.
		deadline := time.Now().Add(15 * time.Second)
		for {
			doc, err := fetchClusterStatus(admins[0])
			if err == nil && doc.Cluster.Nodes == 3 {
				down := 0
				for _, p := range doc.Peers {
					if p.Addr == addrs[2] && !p.Up {
						down++
					}
				}
				if down == 1 {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("dead peer never reported down (last: %+v)", doc)
			}
			time.Sleep(10 * time.Millisecond)
		}

		stopDaemon(t, cancels[0], dones[0])
		stopDaemon(t, cancels[1], dones[1])
	})
}
