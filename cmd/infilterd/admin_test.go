package main

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"infilter/internal/telemetry"
	"infilter/internal/testutil"
)

// adminGet fetches a path with a keep-alive-free transport so the check
// leaves no idle client connections behind.
func adminGet(t *testing.T, tr *http.Transport, url string) (int, string) {
	t.Helper()
	client := &http.Client{Transport: tr}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestAdminServerDrainAndClose is the goroutine-leak and shutdown gate
// for the admin HTTP server: /healthz flips to draining on the SIGTERM
// path, Close joins the serve goroutine, and a full serve cycle leaves
// no goroutines behind.
func TestAdminServerDrainAndClose(t *testing.T) {
	testutil.ExpectNoGoroutineGrowth(t, func() {
		tr := &http.Transport{}
		defer tr.CloseIdleConnections()

		reg := telemetry.NewRegistry()
		reg.Counter("admin_test_total", "test counter").Add(7)
		a, err := newAdminServer("127.0.0.1:0", reg)
		if err != nil {
			t.Fatal(err)
		}
		base := "http://" + a.Addr()

		if code, body := adminGet(t, tr, base+"/healthz"); code != http.StatusOK || body != "ok\n" {
			t.Errorf("healthz = %d %q, want 200 ok", code, body)
		}
		code, body := adminGet(t, tr, base+"/metrics")
		if code != http.StatusOK {
			t.Errorf("metrics status = %d", code)
		}
		if !strings.Contains(body, "admin_test_total 7\n") {
			t.Errorf("metrics body missing counter:\n%s", body)
		}
		if code, _ := adminGet(t, tr, base+"/debug/pprof/cmdline"); code != http.StatusOK {
			t.Errorf("pprof cmdline status = %d", code)
		}

		// SIGTERM path: draining is visible before the server stops.
		a.setDraining()
		if code, body := adminGet(t, tr, base+"/healthz"); code != http.StatusServiceUnavailable || body != "draining\n" {
			t.Errorf("draining healthz = %d %q, want 503 draining", code, body)
		}
		if code, _ := adminGet(t, tr, base+"/metrics"); code != http.StatusOK {
			t.Errorf("metrics while draining = %d, want 200", code)
		}

		if err := a.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		tr.CloseIdleConnections()
		if _, err := (&http.Client{Transport: tr}).Get(base + "/healthz"); err == nil {
			t.Error("server still serving after Close")
		}
	})
}

// TestAdminServerBindError covers the unbindable-address path.
func TestAdminServerBindError(t *testing.T) {
	if _, err := newAdminServer("256.0.0.1:99999", telemetry.NewRegistry()); err == nil {
		t.Error("want bind error")
	}
}
