// Command infilterd is the InFilter analysis daemon: it receives NetFlow
// v5 datagrams on one UDP port per emulated border router / peer AS, runs
// the Basic or Enhanced InFilter pipeline over the flows, and reports
// attacks as IDMEF alerts (to a TCP consumer or stdout).
//
// Usage:
//
//	infilterd -ports 5001,5002,5003 -mode EI -train-flows 1500 [-alert 127.0.0.1:6000]
//
// Port i in the list carries flows from peer AS i (the testbed's
// demultiplexing convention, paper §6.2). EIA sets are trained from the
// first -eia-training flows observed per port unless -eia-file provides
// them explicitly (lines: "<peerAS> <cidr>").
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"infilter/internal/analysis"
	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/flowtools"
	"infilter/internal/idmef"
	"infilter/internal/netaddr"
	"infilter/internal/nns"
	"infilter/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		portsFlag   = flag.String("ports", "5001", "comma-separated UDP ports; port i carries peer AS i")
		modeFlag    = flag.String("mode", "EI", "BI (basic) or EI (enhanced)")
		alertFlag   = flag.String("alert", "", "IDMEF consumer TCP address (empty: log alerts)")
		eiaFile     = flag.String("eia-file", "", "file of '<peerAS> <cidr>' lines preloading EIA sets")
		modelFile   = flag.String("model", "", "detector model file: loaded if present, else trained and saved there (EI mode)")
		trainFlows  = flag.Int("train-flows", 1500, "synthetic flows for NNS training (EI mode)")
		trainSeed   = flag.Int64("train-seed", 1, "seed for synthetic training traffic")
		captureDir  = flag.String("capture", "", "archive received flows into this directory (flow-capture role)")
		statsPeriod = flag.Duration("stats", 30*time.Second, "period for stats logging")
	)
	flag.Parse()

	mode := analysis.ModeEnhanced
	switch strings.ToUpper(*modeFlag) {
	case "EI":
	case "BI":
		mode = analysis.ModeBasic
	default:
		return fmt.Errorf("unknown mode %q", *modeFlag)
	}

	ports, err := parsePorts(*portsFlag)
	if err != nil {
		return err
	}

	set := eia.NewSet(eia.Config{})
	if *eiaFile != "" {
		if err := loadEIAFile(set, *eiaFile); err != nil {
			return err
		}
		log.Printf("loaded %d EIA prefixes from %s", set.Len(), *eiaFile)
	}

	var detector *nns.Detector
	if mode == analysis.ModeEnhanced {
		detector, err = obtainDetector(*modelFile, *trainSeed, *trainFlows)
		if err != nil {
			return err
		}
	}
	engine, err := analysis.NewEngine(analysis.Config{Mode: mode}, set, detector)
	if err != nil {
		return err
	}

	var sender *idmef.Sender
	if *alertFlag != "" {
		sender, err = idmef.Dial(*alertFlag)
		if err != nil {
			return err
		}
		defer sender.Close()
		engine.SetAlertSink(func(a idmef.Alert) {
			if err := sender.Send(a); err != nil {
				log.Printf("send alert: %v", err)
			}
		})
	} else {
		engine.SetAlertSink(func(a idmef.Alert) {
			log.Printf("ALERT %s stage=%s peerAS=%d %s:%d -> %s:%d",
				a.MessageID, a.Assessment.Stage, a.Assessment.PeerAS,
				a.Source.Address, a.Source.Port, a.Target.Address, a.Target.Port)
		})
	}

	var capture *flowtools.Capture
	if *captureDir != "" {
		capture, err = flowtools.NewCapture(*captureDir, flowtools.DefaultRotation)
		if err != nil {
			return err
		}
		defer capture.Close()
		log.Printf("archiving flows into %s", *captureDir)
	}

	peerOfPort := make(map[int]eia.PeerAS, len(ports))
	var mu sync.Mutex // engine is single-threaded; collector is not
	collector := flowtools.NewCollector(func(port int, recs []flow.Record) {
		peer, ok := peerOfPort[port]
		if !ok {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		for _, r := range recs {
			if capture != nil {
				if err := capture.Write(r); err != nil {
					log.Printf("archive flow: %v", err)
				}
			}
			engine.Process(peer, r)
		}
	})
	defer collector.Close()

	for i, p := range ports {
		bound, err := collector.Listen(p)
		if err != nil {
			return fmt.Errorf("listen %d: %w", p, err)
		}
		peerOfPort[bound] = eia.PeerAS(i + 1)
		log.Printf("peer AS %d on udp/%d (%s mode)", i+1, bound, mode)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(*statsPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			mu.Lock()
			st := engine.Stats()
			mu.Unlock()
			recv, malformed := collector.Stats()
			log.Printf("stats: received=%d malformed=%d processed=%d suspects=%d attacks=%d promotions=%d",
				recv, malformed, st.Processed, st.Suspects, st.Attacks, st.Promotions)
		case s := <-sig:
			log.Printf("shutting down on %v", s)
			return nil
		}
	}
}

func parsePorts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || p < 0 || p > 65535 {
			return nil, fmt.Errorf("bad port %q", part)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no ports given")
	}
	return out, nil
}

func loadEIAFile(set *eia.Set, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := eia.ReadInto(set, f); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// obtainDetector loads a saved model when one exists; otherwise it trains
// from synthetic traffic and, if a path was given, persists the result for
// the next start (the paper's offline training phase, §4.2).
func obtainDetector(path string, seed int64, flows int) (*nns.Detector, error) {
	if path != "" {
		if f, err := os.Open(path); err == nil {
			defer f.Close()
			d, err := nns.LoadDetector(f)
			if err != nil {
				return nil, fmt.Errorf("load model %s: %w", path, err)
			}
			log.Printf("loaded detector model from %s (%d clusters)", path, len(d.Clusters()))
			return d, nil
		}
	}
	log.Printf("training NNS detector on %d synthetic flows", flows)
	d, err := trainDetector(seed, flows)
	if err != nil {
		return nil, fmt.Errorf("train detector: %w", err)
	}
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("create model %s: %w", path, err)
		}
		defer f.Close()
		if err := d.Save(f); err != nil {
			return nil, err
		}
		log.Printf("saved detector model to %s", path)
	}
	return d, nil
}

func trainDetector(seed int64, flows int) (*nns.Detector, error) {
	pkts, err := trace.GenerateNormal(trace.NormalConfig{
		Seed:        seed,
		Start:       time.Now().Add(-time.Hour),
		Flows:       flows,
		SrcPrefixes: []netaddr.Prefix{netaddr.MustParsePrefix("0.0.0.0/1")},
		DstPrefix:   netaddr.MustParsePrefix("192.0.2.0/24"),
	})
	if err != nil {
		return nil, err
	}
	recs := make([]flow.Record, 0, flows)
	cacheRecs, err := flowsFromTrace(pkts)
	if err != nil {
		return nil, err
	}
	recs = append(recs, cacheRecs...)
	return nns.Train(nns.DetectorConfig{}, recs)
}
