// Command infilterd is the InFilter analysis daemon: it receives flow
// export datagrams (NetFlow v5, NetFlow v9 or IPFIX, auto-detected per
// datagram) on one UDP port per emulated border router / peer AS, runs
// the Basic or Enhanced InFilter pipeline over the flows, and reports
// attacks as IDMEF alerts (to a TCP consumer or stdout).
//
// Usage:
//
//	infilterd -ports 5001,5002,5003 -mode EI -train-flows 1500 [-alert 127.0.0.1:6000]
//
// Port i in the list carries flows from peer AS i (the testbed's
// demultiplexing convention, paper §6.2). EIA sets are trained from the
// first -eia-training flows observed per port unless -eia-file provides
// them explicitly (lines: "<peerAS> <cidr>").
//
// Ingest is batched by default: each port runs -readers reader sockets
// (SO_REUSEPORT kernel load balancing on Linux, with recvmmsg-style
// multi-datagram reads), and decoded records are handed to the pipeline
// in batches of up to -batch-size records. A partially filled batch is
// flushed after -batch-timeout, so trickle traffic keeps per-record
// detection latency. -batch-size 0 selects the classic per-record path.
//
// Flows are analyzed by a sharded analysis.ParallelEngine: each peer AS
// maps to one worker shard (-workers, default one per port), fed through a
// bounded queue (-queue-depth) that applies backpressure to the UDP
// receive loops when analysis falls behind. On SIGINT/SIGTERM the daemon
// stops ingest, drains every queued flow — including partially filled
// ingest batches — through the pipeline, then flushes the capture
// archive and the alert connection before exiting.
//
// With -state-dir the daemon warm-restarts: EIA state (including runtime
// promotions) and the trained NNS detector are checkpointed into the
// directory every -checkpoint-interval and flushed once more during the
// shutdown drain; on the next start the checkpoints are loaded and the
// daemon resumes with its learned state instead of retraining.
//
// NetFlow v9 and IPFIX streams are template-driven: templates are
// learned into a bounded per-exporter cache (-template-max, -template-ttl)
// shared by every listening port, and data sets that arrive before their
// template are buffered (-orphan-max) and decoded once the template shows
// up. Template learning, orphan buffering and per-exporter sequence gaps
// are all reported on /metrics (infilter_netflow_* families).
//
// With -cluster-listen/-cluster-peers several infilterd instances run as
// one logical deployment: a rendezvous hash ring over the node addresses
// decides which node owns each peer AS's EIA training, and every
// -replicate-interval each node ships its EIA state — as the same
// versioned checkpoint format the warm-restart path writes — to its
// peers over TCP, where it is folded in under eia merge semantics.
// Replication is off the verdict path: local checking never blocks on a
// peer, and an unreachable peer costs backoff retries only.
//
// With -admin-addr the daemon also serves an operator HTTP endpoint:
// /metrics (Prometheus text format covering the collector, the flow
// decoder, the analysis shards, EIA, scan, NNS, the alert sink and, in
// cluster mode, the infilter_cluster_* replication series), /healthz
// (flips to 503 "draining" the moment shutdown starts), /cluster (JSON
// per-peer replication status and cluster-wide aggregates; 404 when
// cluster mode is off) and /debug/pprof. The admin server closes last
// during shutdown so the drain is observable.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"infilter/internal/analysis"
	"infilter/internal/checkpoint"
	"infilter/internal/cluster"
	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/flowtools"
	"infilter/internal/idmef"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/nns"
	"infilter/internal/scan"
	"infilter/internal/sketch"
	"infilter/internal/telemetry"
	"infilter/internal/trace"
)

// Checkpoint artifact names inside -state-dir.
const (
	eiaCheckpointName = "eia.ckpt"
	nnsCheckpointName = "nns.ckpt"
	ttlCheckpointName = "ttl.ckpt"
)

// ingester is the daemon's view of the unified flowtools.Collector
// (batched or per-record depending on Config.MaxRecords).
type ingester interface {
	Listen(port int) (int, error)
	Stats() (received, malformed int)
	Close() error
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

// run is the daemon body: it returns once ctx is canceled (the signal
// path) and every in-flight flow has been drained and flushed.
func run(ctx context.Context, args []string) error {
	return runWith(ctx, args, nil)
}

// runWith additionally reports the bound UDP ports and the admin HTTP
// address ("" when disabled) through onReady, letting tests drive a
// daemon listening on ephemeral ports.
func runWith(ctx context.Context, args []string, onReady func(ports []int, adminAddr string)) error {
	fs := flag.NewFlagSet("infilterd", flag.ContinueOnError)
	var (
		portsFlag   = fs.String("ports", "5001", "comma-separated UDP ports; port i carries peer AS i")
		modeFlag    = fs.String("mode", "EI", "BI (basic) or EI (enhanced)")
		alertFlag   = fs.String("alert", "", "IDMEF consumer TCP address (empty: log alerts)")
		adminAddr   = fs.String("admin-addr", "", "admin HTTP address serving /metrics, /healthz and /debug/pprof (empty: disabled)")
		eiaFile     = fs.String("eia-file", "", "file of '<peerAS> <cidr>' lines preloading EIA sets")
		modelFile   = fs.String("model", "", "detector model file: loaded if present, else trained and saved there (EI mode)")
		trainFlows  = fs.Int("train-flows", 1500, "synthetic flows for NNS training (EI mode)")
		trainSeed   = fs.Int64("train-seed", 1, "seed for synthetic training traffic")
		captureDir  = fs.String("capture", "", "archive received flows into this directory (flow-capture role)")
		statsPeriod = fs.Duration("stats", 30*time.Second, "period for stats logging")
		workers     = fs.Int("workers", 0, "analysis shards; flows route by peer AS (0: one per port)")
		queueDepth  = fs.Int("queue-depth", analysis.DefaultQueueDepth, "bounded per-shard queue depth (backpressure)")
		readers     = fs.Int("readers", 1, "UDP reader sockets per port (>1 uses SO_REUSEPORT; Linux only)")
		batchSize   = fs.Int("batch-size", flowtools.DefaultBatchRecords, "flow records per ingest batch handed to the pipeline (0: per-record path)")
		batchWait   = fs.Duration("batch-timeout", flowtools.DefaultFlushTimeout, "max wait before a partial ingest batch is flushed")
		stateDir    = fs.String("state-dir", "", "warm-restart directory: EIA and NNS state checkpointed here and loaded on startup (empty: disabled)")
		ckptPeriod  = fs.Duration("checkpoint-interval", checkpoint.DefaultInterval, "period between background checkpoints (with -state-dir)")
		tplMax      = fs.Int("template-max", netflow.DefaultMaxTemplates, "max NetFlow v9/IPFIX templates cached across all exporters")
		tplTTL      = fs.Duration("template-ttl", netflow.DefaultTemplateTTL, "NetFlow v9/IPFIX templates unrefreshed this long expire")
		orphanMax   = fs.Int("orphan-max", netflow.DefaultMaxOrphans, "max buffered v9/IPFIX data sets awaiting their template")
		bloomBits   = fs.Int("eia-bloom-bits-per-entry", 10, "EIA Bloom fast-tier bits per prefix (0 disables the tier; verdicts are identical either way)")
		bloomHashes = fs.Int("eia-bloom-hashes", 0, "EIA Bloom probes per query (0: derived from bits-per-entry)")
		hhThreshold = fs.Int("heavy-hitter-threshold", 0, "suspect flows per source within the decay window to flag a flood source (0 disables the stage)")
		hhCounters  = fs.Int("heavy-hitter-counters", scan.DefaultHeavyHitterCounters, "heavy-hitter sketch counters per stage (rounded up to a power of two)")
		hhStages    = fs.Int("heavy-hitter-stages", scan.DefaultHeavyHitterStages, "heavy-hitter sketch stages")
		hhDecay     = fs.Int("heavy-hitter-decay-every", scan.DefaultHeavyHitterDecayEvery, "suspect flows between heavy-hitter counter-halving passes")
		sketchK     = fs.Int("scan-sketch-k", sketch.DefaultK, "KMV registers per scan sketch (larger: more accurate distinct counts)")
		exactScan   = fs.Bool("scan-exact-buffer", false, "use the bounded exact ring buffer for scan analysis instead of the streaming sketch")
		ttlTol      = fs.Int("ttl-tolerance", 0, "TTL-profile hop tolerance for the second-opinion detector (0 disables the stage; EI mode only)")

		clusterListen = fs.String("cluster-listen", "", "TCP address for inbound EIA snapshot replication (enables cluster mode)")
		clusterPeers  = fs.String("cluster-peers", "", "comma-separated replication addresses of the other cluster nodes")
		clusterNodeID = fs.String("cluster-node", "", "this node's ring identity, the address peers dial it at (default: -cluster-listen)")
		replInterval  = fs.Duration("replicate-interval", cluster.DefaultInterval, "period between EIA snapshot replication rounds")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	mode := analysis.ModeEnhanced
	switch strings.ToUpper(*modeFlag) {
	case "EI":
	case "BI":
		mode = analysis.ModeBasic
	default:
		return fmt.Errorf("unknown mode %q", *modeFlag)
	}

	ports, err := parsePorts(*portsFlag)
	if err != nil {
		return err
	}
	if *batchSize < 0 || *batchWait <= 0 {
		return fmt.Errorf("bad batch settings: -batch-size %d -batch-timeout %s", *batchSize, *batchWait)
	}
	if *readers > 1 && *batchSize == 0 {
		return fmt.Errorf("-readers %d needs the batched ingest path (-batch-size > 0)", *readers)
	}
	shards := *workers
	if shards <= 0 {
		shards = len(ports)
	}

	// Cluster mode: N daemons form one logical deployment. The rendezvous
	// ring over the node IDs decides which node owns each peer AS's EIA
	// training (the PromotionFilter below); every node still checks all of
	// its own traffic, and learned state reaches the rest of the cluster
	// through snapshot replication. The ring is built here, before the
	// engine, because the promotion filter is engine configuration; the
	// replication node itself comes after the engine, whose store it feeds.
	var (
		clusterRing  *cluster.Ring
		clusterID    string
		clusterAddrs []string
	)
	if *clusterListen != "" || *clusterPeers != "" {
		clusterID = *clusterNodeID
		if clusterID == "" {
			clusterID = *clusterListen
		}
		if clusterID == "" {
			return fmt.Errorf("-cluster-peers without -cluster-listen needs -cluster-node")
		}
		if *clusterPeers != "" {
			for _, p := range strings.Split(*clusterPeers, ",") {
				if p = strings.TrimSpace(p); p != "" {
					clusterAddrs = append(clusterAddrs, p)
				}
			}
		}
		clusterRing, err = cluster.NewRing(append([]string{clusterID}, clusterAddrs...))
		if err != nil {
			return err
		}
	}

	if *bloomBits < 0 || *bloomHashes < 0 {
		return fmt.Errorf("bad bloom settings: -eia-bloom-bits-per-entry %d -eia-bloom-hashes %d", *bloomBits, *bloomHashes)
	}
	// The Bloom config rides on the Set: the engine's snapshot store adopts
	// the Set's Config, and rebuilds the filters from whatever the trie
	// holds — file preload, checkpoint, training — when it is constructed.
	set := eia.NewSet(eia.Config{
		BloomBitsPerEntry: *bloomBits,
		BloomHashes:       *bloomHashes,
	})
	if *eiaFile != "" {
		if err := loadEIAFile(set, *eiaFile); err != nil {
			return err
		}
		log.Printf("loaded %d EIA prefixes from %s", set.Len(), *eiaFile)
	}
	// The checkpoint loads after -eia-file: a row present in both re-homes
	// to its checkpointed peer, so warm-restart state — which includes every
	// runtime promotion — wins over the static preload.
	if *stateDir != "" {
		ok, err := checkpoint.Load(*stateDir, eiaCheckpointName, func(r io.Reader) error {
			return eia.ReadCheckpointInto(set, r)
		})
		if err != nil {
			return err
		}
		if ok {
			log.Printf("warm restart: %d EIA prefixes from %s", set.Len(), *stateDir)
		}
	}

	var detector *nns.Detector
	if mode == analysis.ModeEnhanced {
		if *stateDir != "" {
			ok, err := checkpoint.Load(*stateDir, nnsCheckpointName, func(r io.Reader) error {
				d, err := nns.LoadDetector(r)
				detector = d
				return err
			})
			if err != nil {
				return err
			}
			if ok {
				log.Printf("warm restart: detector with %d clusters from %s", len(detector.Clusters()), *stateDir)
			}
		}
		if detector == nil {
			detector, err = obtainDetector(*modelFile, *trainSeed, *trainFlows)
			if err != nil {
				return err
			}
		}
	}

	// Telemetry: every component records into one registry; the admin
	// server (when enabled) exposes it on /metrics. The registry is built
	// regardless of the flag so every metric family exists from startup.
	reg := telemetry.NewRegistry()
	senderMetrics := idmef.NewSenderMetrics(reg)
	nnsMetrics := nns.NewMetrics(reg)
	// Template-driven decode state shared by every listening port: v9 and
	// IPFIX exporters are keyed by source address + observation domain, so
	// one cache serves all peers without cross-talk.
	templates := netflow.NewTemplateCache(netflow.TemplateCacheConfig{
		MaxTemplates: *tplMax,
		TemplateTTL:  *tplTTL,
		MaxOrphans:   *orphanMax,
	})
	templates.SetMetrics(netflow.NewMetrics(reg))
	if detector != nil {
		detector.SetMetrics(nnsMetrics)
	}
	var admin *adminServer
	if *adminAddr != "" {
		admin, err = newAdminServer(*adminAddr, reg)
		if err != nil {
			return fmt.Errorf("admin listen %s: %w", *adminAddr, err)
		}
		log.Printf("admin endpoint on http://%s (/metrics /healthz /debug/pprof)", admin.Addr())
	}
	closeAdmin := func() {
		if admin != nil {
			admin.Close()
		}
	}

	var promotionFilter func(eia.PeerAS) bool
	if clusterRing != nil {
		ring, id := clusterRing, clusterID
		promotionFilter = func(peer eia.PeerAS) bool { return ring.OwnsPeerAS(id, uint16(peer)) }
	}
	engine, err := analysis.NewParallelEngine(analysis.ParallelConfig{
		Config: analysis.Config{
			Mode: mode,
			Scan: scan.Config{
				ExactBuffer: *exactScan,
				SketchK:     *sketchK,
			},
			TTL: scan.TTLConfig{Tolerance: *ttlTol},
			HeavyHitter: scan.HeavyHitterConfig{
				Threshold:  *hhThreshold,
				Stages:     *hhStages,
				Counters:   *hhCounters,
				DecayEvery: *hhDecay,
			},
			PromotionFilter: promotionFilter,
		},
		Shards:     shards,
		QueueDepth: *queueDepth,
		Metrics:    analysis.NewPipelineMetrics(reg, shards),
	}, set, detector)
	if err != nil {
		closeAdmin()
		return err
	}
	// TTL profiles are engine state, so their checkpoint loads after the
	// engine exists. A state dir written before the TTL stage shipped
	// simply has no ttl.ckpt — the stage cold-starts and the rest of the
	// warm restart proceeds, so old checkpoints keep loading unchanged.
	if *stateDir != "" && engine.TTLProfile() != nil {
		prof := engine.TTLProfile()
		ok, err := checkpoint.Load(*stateDir, ttlCheckpointName, func(r io.Reader) error {
			return scan.ReadCheckpointInto(prof, r)
		})
		if err != nil {
			engine.Close()
			closeAdmin()
			return err
		}
		if ok {
			log.Printf("warm restart: %d TTL source profiles from %s", prof.Sources(), *stateDir)
		}
	}

	// Cluster replication node: ships the engine's EIA snapshots to every
	// peer each -replicate-interval and folds inbound snapshots into the
	// same store. Strictly off the verdict path — a peer being down costs
	// backoff retries, never a blocked check.
	var clusterNode *cluster.Node
	if clusterRing != nil {
		cm := cluster.NewMetrics(reg, clusterAddrs)
		clusterNode, err = cluster.NewNode(cluster.Config{
			NodeID:   clusterID,
			Listen:   *clusterListen,
			Peers:    clusterAddrs,
			Interval: *replInterval,
		}, engine.EIASet(), cm)
		if err != nil {
			engine.Close()
			closeAdmin()
			return err
		}
		owned := clusterRing.OwnedPeerASCount(clusterID, len(ports))
		cm.RingOwned.Set(int64(owned))
		clusterNode.Start()
		if admin != nil {
			admin.setClusterStatus(clusterNode.Status)
		}
		log.Printf("cluster mode: node %s, %d peer(s), replicating every %s, owns %d/%d peer ASes",
			clusterID, len(clusterAddrs), *replInterval, owned, len(ports))
	}
	closeCluster := func() {
		if clusterNode != nil {
			clusterNode.Close()
		}
	}

	// Warm-restart checkpoints: the engine's snapshot store and the trained
	// detector are periodically serialized into -state-dir (atomic rename,
	// so a crash never corrupts the previous generation) and flushed one
	// last time during shutdown, after the drain.
	var ckpt *checkpoint.Manager
	if *stateDir != "" {
		arts := []checkpoint.Artifact{{Name: eiaCheckpointName, Write: engine.EIASet().WriteCheckpoint}}
		if detector != nil {
			arts = append(arts, checkpoint.Artifact{Name: nnsCheckpointName, Write: detector.Save})
		}
		if prof := engine.TTLProfile(); prof != nil {
			arts = append(arts, checkpoint.Artifact{Name: ttlCheckpointName, Write: prof.WriteCheckpoint})
		}
		ckpt, err = checkpoint.NewManager(
			checkpoint.Config{Dir: *stateDir, Interval: *ckptPeriod},
			checkpoint.NewMetrics(reg), arts...)
		if err != nil {
			closeCluster()
			engine.Close()
			closeAdmin()
			return err
		}
		ckpt.Start()
		log.Printf("checkpointing state into %s every %s", *stateDir, *ckptPeriod)
	}
	closeCkpt := func() {
		if ckpt != nil {
			if err := ckpt.Close(); err != nil {
				log.Printf("final checkpoint: %v", err)
			}
		}
	}

	var sender *idmef.Sender
	if *alertFlag != "" {
		sender, err = idmef.Dial(*alertFlag)
		if err != nil {
			closeCluster()
			engine.Close()
			closeCkpt()
			closeAdmin()
			return err
		}
		sender.SetMetrics(senderMetrics)
		engine.SetAlertSink(func(a idmef.Alert) {
			if err := sender.Send(a); err != nil {
				log.Printf("send alert: %v", err)
			}
		})
	} else {
		engine.SetAlertSink(func(a idmef.Alert) {
			senderMetrics.Sent.Inc() // delivered to the log sink
			log.Printf("ALERT %s stage=%s peerAS=%d %s:%d -> %s:%d",
				a.MessageID, a.Assessment.Stage, a.Assessment.PeerAS,
				a.Source.Address, a.Source.Port, a.Target.Address, a.Target.Port)
		})
	}

	var capture *flowtools.Capture
	if *captureDir != "" {
		capture, err = flowtools.NewCapture(*captureDir, flowtools.DefaultRotation)
		if err != nil {
			closeCluster()
			engine.Close()
			closeCkpt()
			if sender != nil {
				sender.Close()
			}
			closeAdmin()
			return err
		}
		log.Printf("archiving flows into %s", *captureDir)
	}

	// The receive loops start inside Listen, before the bound port (and so
	// the peer AS) of an ephemeral listener is known, so the port→peer map
	// is filled under a lock the handlers share.
	var (
		peerMu     sync.RWMutex
		peerOfPort = make(map[int]eia.PeerAS, len(ports))
	)
	lookupPeer := func(port int) (eia.PeerAS, bool) {
		peerMu.RLock()
		peer, ok := peerOfPort[port]
		peerMu.RUnlock()
		return peer, ok
	}
	archive := func(recs []flow.Record) {
		if capture == nil {
			return
		}
		for _, r := range recs {
			if err := capture.Write(r); err != nil {
				log.Printf("archive flow: %v", err)
			}
		}
	}
	// Ingest path: one unified collector; batch shape is configuration.
	// Batched by default (one SubmitBatch per delivered batch, classified
	// against one EIA snapshot); -batch-size 0 runs the classic
	// per-record path (MaxRecords 1 delivers every datagram immediately,
	// submitted record by record).
	ingestCfg := flowtools.Config{
		Readers:      *readers,
		MaxRecords:   *batchSize,
		FlushTimeout: *batchWait,
		ReadBuffer:   4 << 20,
	}
	handler := func(b flowtools.Batch) {
		peer, ok := lookupPeer(b.Port)
		if !ok {
			return
		}
		archive(b.Records)
		if err := engine.SubmitBatch(peer, b.Records); err != nil {
			return // engine closed: shutdown in progress
		}
	}
	if *batchSize <= 0 {
		ingestCfg.MaxRecords = 1
		handler = func(b flowtools.Batch) {
			peer, ok := lookupPeer(b.Port)
			if !ok {
				return
			}
			archive(b.Records)
			for _, r := range b.Records {
				if err := engine.Submit(peer, r); err != nil {
					return // engine closed: shutdown in progress
				}
			}
		}
	}
	collector := flowtools.New(ingestCfg, handler)
	collector.SetMetrics(flowtools.NewIngestMetrics(reg))
	collector.SetTemplateCache(templates)
	if *batchSize > 0 {
		log.Printf("batched ingest: %d reader(s)/port, batch-size %d, batch-timeout %s",
			collector.Readers(), *batchSize, *batchWait)
	} else {
		log.Printf("per-record ingest (-batch-size 0)")
	}

	bound := make([]int, 0, len(ports))
	for i, p := range ports {
		peerMu.Lock()
		bp, err := collector.Listen(p)
		if err == nil {
			peerOfPort[bp] = eia.PeerAS(i + 1)
			bound = append(bound, bp)
		}
		peerMu.Unlock()
		if err != nil {
			collector.Close()
			closeCluster()
			engine.Close()
			closeCkpt()
			if capture != nil {
				capture.Close()
			}
			if sender != nil {
				sender.Close()
			}
			closeAdmin()
			return fmt.Errorf("listen %d: %w", p, err)
		}
		log.Printf("peer AS %d on udp/%d (%s mode, %d shards)", i+1, bp, mode, shards)
	}
	if onReady != nil {
		addr := ""
		if admin != nil {
			addr = admin.Addr()
		}
		onReady(bound, addr)
	}

	ticker := time.NewTicker(*statsPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			st := engine.Stats()
			recv, malformed := collector.Stats()
			log.Printf("stats: received=%d malformed=%d processed=%d suspects=%d attacks=%d promotions=%d",
				recv, malformed, st.Processed, st.Suspects, st.Attacks, st.Promotions)
		case <-ctx.Done():
			log.Printf("shutting down: draining in-flight flows")
			return shutdown(collector, engine, clusterNode, ckpt, capture, sender, admin)
		}
	}
}

// shutdown tears the daemon down in dependency order: flip /healthz to
// draining, stop ingest and join the receive loops, drain every queued
// flow through the analysis shards (emitting their alerts), stop cluster
// replication — after the drain, so the final replication round a peer
// pulls includes drain-time promotions — flush the final state
// checkpoint, then the capture archive and the alert connection, and
// finally stop the admin server — last, so /metrics stays scrapable
// through the drain. The first error is reported; later stages still
// run.
func shutdown(collector ingester, engine *analysis.ParallelEngine, clusterNode *cluster.Node, ckpt *checkpoint.Manager, capture *flowtools.Capture, sender *idmef.Sender, admin *adminServer) error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if admin != nil {
		admin.setDraining()
	}
	keep(collector.Close())
	keep(engine.Close())
	if clusterNode != nil {
		keep(clusterNode.Close())
	}
	if ckpt != nil {
		keep(ckpt.Close())
	}
	if capture != nil {
		keep(capture.Close())
	}
	if sender != nil {
		keep(sender.Close())
	}
	st := engine.Stats()
	log.Printf("drained: processed=%d suspects=%d attacks=%d promotions=%d",
		st.Processed, st.Suspects, st.Attacks, st.Promotions)
	if admin != nil {
		keep(admin.Close())
	}
	return firstErr
}

func parsePorts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || p < 0 || p > 65535 {
			return nil, fmt.Errorf("bad port %q", part)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no ports given")
	}
	return out, nil
}

func loadEIAFile(set *eia.Set, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := eia.ReadInto(set, f); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// obtainDetector loads a saved model when one exists; otherwise it trains
// from synthetic traffic and, if a path was given, persists the result for
// the next start (the paper's offline training phase, §4.2).
func obtainDetector(path string, seed int64, flows int) (*nns.Detector, error) {
	if path != "" {
		if f, err := os.Open(path); err == nil {
			defer f.Close()
			d, err := nns.LoadDetector(f)
			if err != nil {
				return nil, fmt.Errorf("load model %s: %w", path, err)
			}
			log.Printf("loaded detector model from %s (%d clusters)", path, len(d.Clusters()))
			return d, nil
		}
	}
	log.Printf("training NNS detector on %d synthetic flows", flows)
	d, err := trainDetector(seed, flows)
	if err != nil {
		return nil, fmt.Errorf("train detector: %w", err)
	}
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("create model %s: %w", path, err)
		}
		defer f.Close()
		if err := d.Save(f); err != nil {
			return nil, err
		}
		log.Printf("saved detector model to %s", path)
	}
	return d, nil
}

func trainDetector(seed int64, flows int) (*nns.Detector, error) {
	pkts, err := trace.GenerateNormal(trace.NormalConfig{
		Seed:        seed,
		Start:       time.Now().Add(-time.Hour),
		Flows:       flows,
		SrcPrefixes: []netaddr.Prefix{netaddr.MustParsePrefix("0.0.0.0/1")},
		DstPrefix:   netaddr.MustParsePrefix("192.0.2.0/24"),
	})
	if err != nil {
		return nil, err
	}
	recs := make([]flow.Record, 0, flows)
	cacheRecs, err := flowsFromTrace(pkts)
	if err != nil {
		return nil, err
	}
	recs = append(recs, cacheRecs...)
	return nns.Train(nns.DetectorConfig{}, recs)
}
