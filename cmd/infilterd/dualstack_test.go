package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"infilter/internal/flow"
	"infilter/internal/idmef"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/testutil"
)

// testRec6 is testRec for an IPv6 source, with a v6 destination so the
// record exercises the 16-byte template end to end.
func testRec6(src string, packets, bytes uint32, proto uint8, dstPort uint16) flow.Record {
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	return flow.Record{
		Key: flow.Key{
			Src:   netaddr.MustParseAddr(src),
			Dst:   netaddr.MustParseAddr("2001:db8::1"),
			Proto: proto, DstPort: dstPort,
		},
		Packets: packets, Bytes: bytes,
		Start: boot.Add(time.Second), End: boot.Add(2 * time.Second),
	}
}

// TestDualStackIPFIXIngestEndToEnd is the acceptance test for the
// address-family-generic core: one IPFIX stream carrying interleaved
// v4 and v6 records — per family: Match sources (in the port's EIA
// set), WrongPeer sources (in another peer's set) and Unknown sources
// (in no set) — is replayed over real UDP through collector → decode →
// pipeline. Every non-Match record must alert regardless of family,
// and the /metrics scrape must expose the verdict and ingest counters
// split by the family label with exactly the per-family totals.
func TestDualStackIPFIXIngestEndToEnd(t *testing.T) {
	var alerts atomic.Int64
	consumer := idmef.NewConsumer(func(idmef.Alert) { alerts.Add(1) })
	alertPort, err := consumer.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()

	// Peer 1 owns the port; peer 2 exists only to produce WrongPeer.
	eiaPath := filepath.Join(t.TempDir(), "eia.txt")
	eiaBody := "1 61.0.0.0/11\n" +
		"1 2001:db8:1000::/48\n" +
		"2 70.0.0.0/11\n" +
		"2 2001:db8:2000::/48\n"
	if err := os.WriteFile(eiaPath, []byte(eiaBody), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{
		"-ports", "0", "-mode", "BI",
		"-alert", fmt.Sprintf("127.0.0.1:%d", alertPort),
		"-admin-addr", "127.0.0.1:0",
		"-eia-file", eiaPath,
		"-stats", "1h", "-workers", "2", "-queue-depth", "64",
	}

	const legal, wrong, unknown = 10, 5, 10
	const perFamily = legal + wrong + unknown
	const total = 2 * perFamily
	const wantAlerts = int64(2 * (wrong + unknown))

	// Interleave the families record by record — the worst case for the
	// exporter's per-family template segmentation and for the decoder.
	var v4, v6 []flow.Record
	for j := 0; j < legal; j++ {
		v4 = append(v4, testRec(fmt.Sprintf("61.0.7.%d", j+1), 9, 4040, flow.ProtoTCP, 80))
		v6 = append(v6, testRec6(fmt.Sprintf("2001:db8:1000::%d", j+1), 9, 4040, flow.ProtoTCP, 80))
	}
	for j := 0; j < wrong; j++ {
		v4 = append(v4, testRec(fmt.Sprintf("70.0.0.%d", j+1), 2, 200, flow.ProtoTCP, 443))
		v6 = append(v6, testRec6(fmt.Sprintf("2001:db8:2000::%d", j+1), 2, 200, flow.ProtoTCP, 443))
	}
	for j := 0; j < unknown; j++ {
		v4 = append(v4, testRec(fmt.Sprintf("99.0.0.%d", j+1), 1, 404, flow.ProtoUDP, 1434))
		v6 = append(v6, testRec6(fmt.Sprintf("2001:db8:bad::%d", j+1), 1, 404, flow.ProtoUDP, 1434))
	}
	var mixed []flow.Record
	for i := range v4 {
		mixed = append(mixed, v4[i], v6[i])
	}

	testutil.ExpectNoGoroutineGrowth(t, func() {
		tr := &http.Transport{}
		defer tr.CloseIdleConnections()

		ports, admin, cancel, done := startDaemonAdmin(t, args)
		base := "http://" + admin

		// Template state is keyed by exporter address: the whole stream
		// (templates + data) must leave one socket.
		enc := netflow.NewIPFIXEncoder(7)
		now := time.Date(2005, 4, 1, 0, 1, 0, 0, time.UTC)
		conn, err := net.Dial("udp", fmt.Sprintf("127.0.0.1:%d", ports[0]))
		if err != nil {
			t.Fatal(err)
		}
		for _, wd := range enc.Encode(mixed, now) {
			if _, err := conn.Write(wd.Raw); err != nil {
				t.Fatal(err)
			}
		}
		conn.Close()

		deadline := time.Now().Add(10 * time.Second)
		for alerts.Load() < wantAlerts {
			if time.Now().After(deadline) {
				t.Fatalf("got %d alerts, want %d", alerts.Load(), wantAlerts)
			}
			time.Sleep(2 * time.Millisecond)
		}
		// The Match records race the alert wait; poll until the pipeline
		// has consumed every record.
		var m map[string]float64
		for {
			m = scrapeAdmin(t, tr, base+"/metrics")
			if sumMetric(m, "infilter_pipeline_flows_total") >= float64(total) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("pipeline analyzed %v flows, want %d",
					sumMetric(m, "infilter_pipeline_flows_total"), total)
			}
			time.Sleep(2 * time.Millisecond)
		}

		checks := []struct {
			series string
			want   float64
		}{
			{`infilter_collector_records_total{family="4"}`, perFamily},
			{`infilter_collector_records_total{family="6"}`, perFamily},
			{`infilter_eia_hits_total{family="4"}`, legal},
			{`infilter_eia_hits_total{family="6"}`, legal},
			{`infilter_eia_misses_total{family="4"}`, wrong + unknown},
			{`infilter_eia_misses_total{family="6"}`, wrong + unknown},
		}
		for _, c := range checks {
			got, ok := m[c.series]
			if !ok {
				t.Errorf("series %s missing from scrape", c.series)
				continue
			}
			if got != c.want {
				t.Errorf("%s = %v, want %v", c.series, got, c.want)
			}
		}
		if got := sumMetric(m, "infilter_alerts_sent_total"); got != float64(wantAlerts) {
			t.Errorf("infilter_alerts_sent_total = %v, want %d", got, wantAlerts)
		}
		if got := sumMetric(m, `infilter_netflow_datagrams_total{version="10"}`); got == 0 {
			t.Error("no IPFIX datagrams counted")
		}

		tr.CloseIdleConnections()
		stopDaemon(t, cancel, done)
	})
}
