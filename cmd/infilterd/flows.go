package main

import (
	"infilter/internal/flow"
	"infilter/internal/netflow"
	"infilter/internal/packet"
)

// flowsFromTrace aggregates a packet trace into flow records through the
// router-cache emulation, the same path live traffic takes.
func flowsFromTrace(pkts []packet.Packet) ([]flow.Record, error) {
	cache := netflow.NewCache(netflow.CacheConfig{ExpireOnFINRST: true})
	for _, p := range pkts {
		cache.Observe(p, 0)
	}
	cache.FlushAll()
	return cache.Drain(), nil
}
