package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"infilter/internal/cluster"
	"infilter/internal/telemetry"
)

// adminServer is the daemon's operator-facing HTTP endpoint:
//
//	/metrics      Prometheus text exposition of the telemetry registry
//	/healthz      200 "ok" while serving, 503 "draining" during shutdown
//	/cluster      JSON cluster status (404 unless cluster mode is on)
//	/debug/pprof  the standard Go profiling handlers
//
// It participates in the SIGTERM sequence from both ends: setDraining is
// called the moment the signal arrives (so load balancers and probes see
// the drain immediately), and Close runs after the pipeline has flushed,
// keeping /metrics scrapable while queued flows drain.
type adminServer struct {
	srv      *http.Server
	addr     string
	draining atomic.Bool
	done     chan struct{}
	// clusterStatus is installed by setClusterStatus once the cluster
	// node exists (the admin server starts earlier in the boot sequence).
	clusterStatus atomic.Pointer[func() cluster.Status]
}

// adminShutdownTimeout bounds how long Close waits for in-flight scrapes.
const adminShutdownTimeout = 5 * time.Second

// newAdminServer binds addr (port 0 picks a free port) and starts
// serving the admin endpoints.
func newAdminServer(addr string, reg *telemetry.Registry) (*adminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a := &adminServer{addr: ln.Addr().String(), done: make(chan struct{})}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if a.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n"))
			return
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
		fn := a.clusterStatus.Load()
		if fn == nil {
			http.Error(w, "cluster mode disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode((*fn)()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	a.srv = &http.Server{Handler: mux}
	go func() {
		defer close(a.done)
		a.srv.Serve(ln) // returns http.ErrServerClosed on Shutdown
	}()
	return a, nil
}

// Addr returns the bound listen address.
func (a *adminServer) Addr() string { return a.addr }

// setDraining flips /healthz to 503 "draining". It does not stop the
// server: metrics stay scrapable until Close.
func (a *adminServer) setDraining() { a.draining.Store(true) }

// setClusterStatus enables /cluster, serving fn's snapshot per request.
func (a *adminServer) setClusterStatus(fn func() cluster.Status) {
	a.clusterStatus.Store(&fn)
}

// Close gracefully shuts the server down: the listener closes, in-flight
// requests get adminShutdownTimeout to finish, idle keep-alive
// connections are closed, and the serve goroutine is joined.
func (a *adminServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), adminShutdownTimeout)
	defer cancel()
	err := a.srv.Shutdown(ctx)
	<-a.done
	return err
}
