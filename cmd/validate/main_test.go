package main

import "testing"

func TestRunDumpWithSample(t *testing.T) {
	if err := runDump("testdata/rib.txt", "4.2.101.20"); err != nil {
		t.Fatal(err)
	}
	if err := runDump("testdata/rib.txt", "not-an-ip"); err == nil {
		t.Error("bad target: want error")
	}
	if err := runDump("", "4.2.101.20"); err == nil {
		t.Error("missing dump: want error")
	}
	if err := runDump("testdata/missing.txt", "4.2.101.20"); err == nil {
		t.Error("missing file: want error")
	}
}

func TestRunFigure1Smoke(t *testing.T) {
	if err := runFigure1(7); err != nil {
		t.Fatal(err)
	}
}
