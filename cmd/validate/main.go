// Command validate reproduces the paper's empirical validation of the
// InFilter hypothesis (§3): the traceroute campaigns from Looking Glass
// sites (§3.1.1) and the BGP-derived peer-AS → source-AS mapping analysis
// (§3.2, Figure 5). It can also derive the mapping from a real
// "show ip bgp" dump.
//
// Examples:
//
//	validate -mode traceroute
//	validate -mode bgp
//	validate -mode dump -dump rib.txt -target-ip 4.2.101.20
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"infilter/internal/bgp"
	"infilter/internal/netaddr"
	"infilter/internal/stats"
	"infilter/internal/topo"
	"infilter/internal/traceroute"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		mode     = flag.String("mode", "both", "traceroute, bgp, dump, figure1, or both")
		seed     = flag.Int64("seed", 42, "simulation seed")
		dumpFile = flag.String("dump", "", "show-ip-bgp dump file (mode=dump)")
		targetIP = flag.String("target-ip", "4.2.101.20", "target address for mapping derivation (mode=dump)")
	)
	flag.Parse()

	switch *mode {
	case "traceroute":
		return runTraceroute(*seed)
	case "figure1":
		return runFigure1(*seed)
	case "bgp":
		return runBGP(*seed)
	case "dump":
		return runDump(*dumpFile, *targetIP)
	case "both":
		if err := runTraceroute(*seed); err != nil {
			return err
		}
		return runBGP(*seed)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

func runTraceroute(seed int64) error {
	fmt.Println("== §3.1 Traceroute-based validation (24 LG sites -> 20 targets) ==")
	campaigns := []struct {
		name string
		cfg  traceroute.CampaignConfig
	}{
		{"24-hour run (30-min period)", traceroute.CampaignConfig{
			Period: 30 * time.Minute, Duration: 24 * time.Hour, CompletionRate: 0.92,
		}},
		{"4-day run (60-min period)", traceroute.CampaignConfig{
			Period: time.Hour, Duration: 96 * time.Hour, CompletionRate: 0.92,
		}},
	}
	tab := stats.Table{
		Title:   "Last AS-level hop change rates (paper: 4.8%/0.4% and 6.4%/0.6%)",
		Columns: []string{"campaign", "samples", "raw", "/24 smoothed", "FQDN aggregated"},
	}
	for _, c := range campaigns {
		n := topo.New(topo.Config{Seed: seed})
		res, err := traceroute.Run(n, c.cfg)
		if err != nil {
			return err
		}
		tab.AddRow(c.name,
			fmt.Sprintf("%d", res.Samples),
			stats.Pct(res.RawChangePct()),
			stats.Pct(res.SubnetChangePct()),
			stats.Pct(res.FQDNChangePct()))
	}
	fmt.Println(tab.String())
	return nil
}

func runFigure1(seed int64) error {
	fmt.Println("== Figure 1 (concept): route stability vs distance from source ==")
	n := topo.New(topo.Config{Seed: seed})
	rates := traceroute.HopStability(n, 0, 0, 500)
	tab := stats.Table{
		Title:   "Per-hop router change rate over 500 samples (last two hops are the peer AS and BR)",
		Columns: []string{"hop", "role", "change rate"},
	}
	for h, r := range rates {
		role := "transit (IGP)"
		if h == len(rates)-2 {
			role = "peer AS router"
		} else if h == len(rates)-1 {
			role = "border router"
		}
		tab.AddRow(fmt.Sprintf("%d", h+1), role, stats.Pct(r))
	}
	fmt.Println(tab.String())
	return nil
}

func runBGP(seed int64) error {
	fmt.Println("== §3.2 BGP-based validation (30 days, 2-hour readings) ==")
	series, err := bgp.Simulate(bgp.SimConfig{Seed: seed})
	if err != nil {
		return err
	}
	tab := stats.Table{
		Title:   "Figure 5: Source-AS-set change per target (paper: avg 1.6%, max 5%)",
		Columns: []string{"target AS", "#peer ASes", "avg change", "max change"},
	}
	var avgs, maxes []float64
	for _, s := range series {
		tab.AddRow(
			fmt.Sprintf("%d", s.TargetAS),
			fmt.Sprintf("%d", s.NumPeers),
			stats.Pct(100*s.AvgChange),
			stats.Pct(100*s.MaxChange))
		avgs = append(avgs, 100*s.AvgChange)
		maxes = append(maxes, 100*s.MaxChange)
	}
	fmt.Println(tab.String())
	fmt.Printf("overall: avg=%.2f%% max=%.2f%%\n\n", stats.Mean(avgs), stats.Max(maxes))
	return nil
}

func runDump(path, targetIP string) error {
	if path == "" {
		return fmt.Errorf("mode=dump requires -dump <file>")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	entries, err := bgp.ParseShowIPBGP(f)
	if err != nil {
		return err
	}
	ip, err := netaddr.ParseAddr(targetIP)
	if err != nil {
		return err
	}
	m := bgp.DeriveMapping(entries, ip)
	tab := stats.Table{
		Title:   fmt.Sprintf("Peer AS -> source AS mapping for %s (%d RIB entries)", ip, len(entries)),
		Columns: []string{"peer AS", "source AS set"},
	}
	for _, peer := range m.Peers() {
		tab.AddRow(fmt.Sprintf("%d", peer), fmt.Sprint(m[peer]))
	}
	fmt.Println(tab.String())
	return nil
}
