// Package bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks: each Benchmark* below corresponds to one
// artifact (see DESIGN.md's per-experiment index) and reports the paper's
// series via b.ReportMetric, so `go test -bench=. -benchmem` reproduces
// the whole evaluation at reduced scale. cmd/experiment and cmd/validate
// print the same series at full scale.
package bench

import (
	"net"
	"sync"
	"testing"
	"time"

	"infilter/internal/analysis"
	"infilter/internal/bgp"
	"infilter/internal/blocks"
	"infilter/internal/eia"
	"infilter/internal/experiment"
	"infilter/internal/flow"
	"infilter/internal/flowtools"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/nns"
	"infilter/internal/scan"
	"infilter/internal/stats"
	"infilter/internal/topo"
	"infilter/internal/trace"
	"infilter/internal/traceroute"
)

// benchOpts is the reduced-scale configuration the figure benches use.
func benchOpts() experiment.Options {
	return experiment.Options{
		Seed:                 1,
		Runs:                 1,
		NormalFlowsPerSource: 200,
		TrainingFlows:        600,
	}
}

// --- §3.1: Looking Glass traceroute validation ---

func benchmarkTracerouteCampaign(b *testing.B, period, duration time.Duration) {
	b.Helper()
	var res traceroute.Result
	for i := 0; i < b.N; i++ {
		n := topo.New(topo.Config{Seed: 42})
		var err error
		res, err = traceroute.Run(n, traceroute.CampaignConfig{
			Period: period, Duration: duration, CompletionRate: 0.92,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.RawChangePct(), "raw_change_%")
	b.ReportMetric(res.SubnetChangePct(), "subnet_change_%")
	b.ReportMetric(res.FQDNChangePct(), "aggregated_change_%")
	b.ReportMetric(float64(res.Samples), "samples")
}

// BenchmarkValidationTraceroute24h reproduces §3.1.1's 24-hour run
// (paper: raw 4.8%, aggregated 0.4%).
func BenchmarkValidationTraceroute24h(b *testing.B) {
	benchmarkTracerouteCampaign(b, 30*time.Minute, 24*time.Hour)
}

// BenchmarkValidationTraceroute4day reproduces §3.1.1's 4-day run
// (paper: raw 6.4%, aggregated 0.6%).
func BenchmarkValidationTraceroute4day(b *testing.B) {
	benchmarkTracerouteCampaign(b, time.Hour, 96*time.Hour)
}

// --- §3.2 / Figure 5: BGP validation ---

// BenchmarkValidationBGPFig5 reproduces Figure 5 (paper: avg source-AS-set
// change 1.6%, max 5%).
func BenchmarkValidationBGPFig5(b *testing.B) {
	var series []bgp.TargetSeries
	for i := 0; i < b.N; i++ {
		var err error
		series, err = bgp.Simulate(bgp.SimConfig{Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
	}
	var avgs, maxes []float64
	for _, s := range series {
		avgs = append(avgs, 100*s.AvgChange)
		maxes = append(maxes, 100*s.MaxChange)
	}
	b.ReportMetric(stats.Mean(avgs), "avg_change_%")
	b.ReportMetric(stats.Max(maxes), "max_change_%")
}

// --- Tables 1-3: address-block machinery ---

// BenchmarkTable1Blocks regenerates the 143 public /8 blocks of Table 1.
func BenchmarkTable1Blocks(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n = len(blocks.Table1())
	}
	b.ReportMetric(float64(n), "blocks")
}

// BenchmarkTable2Allocations regenerates Table 2's allocation schedule at
// 2% route change and validates its invariants.
func BenchmarkTable2Allocations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := blocks.NewSchedule(2, 4)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3EIA builds the Table 3 EIA preload (1000 prefixes over
// 10 peer ASes).
func BenchmarkTable3EIA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		set := eia.NewSet(eia.Config{})
		for as := 1; as <= blocks.DefaultSources; as++ {
			alloc, err := blocks.EIAAllocation(as)
			if err != nil {
				b.Fatal(err)
			}
			for _, sb := range alloc {
				set.AddPrefix(eia.PeerAS(as), sb.Prefix())
			}
		}
		if set.Len() != blocks.NumUsedSubBlocks {
			b.Fatalf("EIA preload has %d prefixes", set.Len())
		}
	}
}

// --- Figures 15/16: spoofed-attack detection and false positives ---

// BenchmarkFigure15DetectionRate reruns the §6.3.1/§6.3.2 sweep at
// reduced scale (paper: ≈83% single set, ≈70% ten sets, flat in volume).
func BenchmarkFigure15DetectionRate(b *testing.B) {
	var sw *experiment.SpoofedSweep
	for i := 0; i < b.N; i++ {
		var err error
		sw, err = experiment.RunSpoofedSweep(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(sw.Volumes) - 1
	b.ReportMetric(sw.Single[last].DetectionRate, "det_single_%")
	b.ReportMetric(sw.Ten[last].DetectionRate, "det_10sets_%")
}

// BenchmarkFigure16FalsePositives reports the same sweep's FP series
// (paper: ≈1.25% single, up to ≈4% ten sets).
func BenchmarkFigure16FalsePositives(b *testing.B) {
	var sw *experiment.SpoofedSweep
	for i := 0; i < b.N; i++ {
		var err error
		sw, err = experiment.RunSpoofedSweep(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(sw.Volumes) - 1
	b.ReportMetric(sw.Single[last].FPRate, "fp_single_%")
	b.ReportMetric(sw.Ten[last].FPRate, "fp_10sets_%")
}

// --- Figures 17/18/19: route-change sensitivity ---

func benchmarkRouteChange(b *testing.B, mode analysis.Mode) *experiment.RouteChangeSweep {
	b.Helper()
	var sw *experiment.RouteChangeSweep
	for i := 0; i < b.N; i++ {
		var err error
		sw, err = experiment.RunRouteChangeSweep(benchOpts(), mode)
		if err != nil {
			b.Fatal(err)
		}
	}
	vol8 := len(sw.Volumes) - 1
	rc8 := len(sw.Rates) - 1
	b.ReportMetric(sw.Grid[vol8][0].FPRate, "fp_rc1_%")
	b.ReportMetric(sw.Grid[vol8][rc8].FPRate, "fp_rc8_%")
	return sw
}

// BenchmarkFigure17RouteChangeBI: Basic InFilter FP rises with route
// change (paper: up to ≈7.4% at 8%/8%).
func BenchmarkFigure17RouteChangeBI(b *testing.B) {
	benchmarkRouteChange(b, analysis.ModeBasic)
}

// BenchmarkFigure18RouteChangeEI: Enhanced InFilter FP stays well below
// BI (paper: ≈5.25% at 8%/8%).
func BenchmarkFigure18RouteChangeEI(b *testing.B) {
	benchmarkRouteChange(b, analysis.ModeEnhanced)
}

// BenchmarkFigure19BIvsEI contrasts the two at 8% attack volume and
// reports the EI reduction (paper: ≈30%).
func BenchmarkFigure19BIvsEI(b *testing.B) {
	var biFP, eiFP float64
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		bi, err := experiment.RunRouteChangeSweep(opts, analysis.ModeBasic)
		if err != nil {
			b.Fatal(err)
		}
		ei, err := experiment.RunRouteChangeSweep(opts, analysis.ModeEnhanced)
		if err != nil {
			b.Fatal(err)
		}
		vol8, rc8 := len(bi.Volumes)-1, len(bi.Rates)-1
		biFP, eiFP = bi.Grid[vol8][rc8].FPRate, ei.Grid[vol8][rc8].FPRate
	}
	b.ReportMetric(biFP, "bi_fp_%")
	b.ReportMetric(eiFP, "ei_fp_%")
	if biFP > 0 {
		b.ReportMetric(100*(biFP-eiFP)/biFP, "ei_reduction_%")
	}
}

// --- §6.4: per-flow processing latency ---

// trainedBenchEngine builds an engine plus a stream of suspect flows.
func trainedBenchEngine(b *testing.B, mode analysis.Mode) (*analysis.Engine, []flow.Record) {
	b.Helper()
	start := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	target := netaddr.MustParsePrefix("192.0.2.0/24")
	pkts, err := trace.GenerateNormal(trace.NormalConfig{
		Seed: 1, Start: start, Flows: 900,
		SrcPrefixes: []netaddr.Prefix{netaddr.MustParsePrefix("61.0.0.0/11")},
		DstPrefix:   target,
	})
	if err != nil {
		b.Fatal(err)
	}
	cache := netflow.NewCache(netflow.CacheConfig{ExpireOnFINRST: true})
	for _, p := range pkts {
		cache.Observe(p, 1)
	}
	cache.FlushAll()
	var labeled []analysis.LabeledRecord
	for _, r := range cache.Drain() {
		labeled = append(labeled, analysis.LabeledRecord{Peer: 1, Record: r})
	}
	engine, err := analysis.Train(analysis.Config{Mode: mode}, labeled)
	if err != nil {
		b.Fatal(err)
	}

	// Suspect stream: benign flows from an unexpected block (route change).
	suspectPkts, err := trace.GenerateNormal(trace.NormalConfig{
		Seed: 2, Start: start.Add(time.Hour), Flows: 500,
		SrcPrefixes: []netaddr.Prefix{netaddr.MustParsePrefix("70.0.0.0/11")},
		DstPrefix:   target,
	})
	if err != nil {
		b.Fatal(err)
	}
	cache2 := netflow.NewCache(netflow.CacheConfig{ExpireOnFINRST: true})
	for _, p := range suspectPkts {
		cache2.Observe(p, 1)
	}
	cache2.FlushAll()
	return engine, cache2.Drain()
}

// BenchmarkLatencyBasic measures BI per-suspect-flow processing (paper:
// ≈0.5 ms on 2005 hardware; the BI≪EI ordering is the reproducible part).
func BenchmarkLatencyBasic(b *testing.B) {
	engine, suspects := trainedBenchEngine(b, analysis.ModeBasic)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Process(1, suspects[i%len(suspects)])
	}
}

// BenchmarkLatencyEnhanced measures EI per-suspect-flow processing
// (paper: 2-6 ms; NNS search dominates).
func BenchmarkLatencyEnhanced(b *testing.B) {
	engine, suspects := trainedBenchEngine(b, analysis.ModeEnhanced)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Process(1, suspects[i%len(suspects)])
	}
}

// --- Figure 1 (concept): route stability vs distance from source ---

// BenchmarkFigure1RouteStability measures per-hop change rates along the
// path: transit (IGP-churned) hops flap, the last AS-level hop does not —
// the asymmetry Figure 1 sketches.
func BenchmarkFigure1RouteStability(b *testing.B) {
	var mid, last float64
	for i := 0; i < b.N; i++ {
		n := topo.New(topo.Config{Seed: 3})
		const samples = 300
		var midChanges, lastChanges, comparisons int
		var prev topo.Path
		for s := 0; s < samples; s++ {
			p := n.Traceroute(0, 0)
			if s > 0 {
				comparisons++
				if p.Hops[2].FQDN != prev.Hops[2].FQDN {
					midChanges++
				}
				if p.BRHop().FQDN != prev.BRHop().FQDN {
					lastChanges++
				}
			}
			prev = p
		}
		mid = 100 * float64(midChanges) / float64(comparisons)
		last = 100 * float64(lastChanges) / float64(comparisons)
	}
	b.ReportMetric(mid, "transit_hop_change_%")
	b.ReportMetric(last, "last_hop_change_%")
}

// --- Ablations over the design choices DESIGN.md calls out ---

func buildNNSCluster(b *testing.B, n int) []nns.BitVec {
	b.Helper()
	enc := nns.MustDefaultEncoder()
	out := make([]nns.BitVec, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, enc.Encode(flow.Stats{
			Bytes:      float64(2000 + i*37%20000),
			Packets:    float64(5 + i%40),
			DurationMS: float64(100 + i*13%2000),
			BitRate:    float64(50000 + i*97%400000),
			PacketRate: float64(5 + i%50),
		}))
	}
	return out
}

// BenchmarkAblationNNSM2 sweeps the trace width M2 (paper fixes 12):
// larger M2 means bigger tables and finer buckets.
func BenchmarkAblationNNSM2(b *testing.B) {
	cluster := buildNNSCluster(b, 120)
	for _, m2 := range []int{8, 12, 16} {
		b.Run(itoa(m2), func(b *testing.B) {
			params := nns.Params{D: nns.DefaultD, M1: 1, M2: m2, M3: 3, Seed: 1}
			st, err := nns.Build(params, cluster)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := st.Search(cluster[i%len(cluster)]); !ok {
					b.Fatal("no neighbor")
				}
			}
		})
	}
}

// BenchmarkAblationNNSBuild measures structure-creation cost growth with
// training-cluster size (the paper's "space polynomial in training size").
func BenchmarkAblationNNSBuild(b *testing.B) {
	for _, n := range []int{50, 150, 400} {
		cluster := buildNNSCluster(b, n)
		b.Run(itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := nns.Build(nns.DefaultParams(), cluster); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationScanBuffer sweeps the suspect-buffer size (paper
// uses 200).
func BenchmarkAblationScanBuffer(b *testing.B) {
	for _, size := range []int{50, 200, 800} {
		b.Run(itoa(size), func(b *testing.B) {
			a := scan.New(scan.Config{BufferSize: size})
			rec := flow.Record{
				Key:     flow.Key{Dst: netaddr.MustParseAddr("192.0.2.1"), DstPort: 1434, Proto: flow.ProtoUDP},
				Packets: 1,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec.Key.Dst = netaddr.IPv4(0xc0000200 + uint32(i%250)).Addr()
				a.Add(rec)
			}
		})
	}
}

// BenchmarkAblationPartitioning contrasts per-protocol subclusters with a
// single global cluster (§5.1.3(c)'s design choice): it reports how many
// service-exploit flows each variant flags.
func BenchmarkAblationPartitioning(b *testing.B) {
	start := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	target := netaddr.MustParsePrefix("192.0.2.0/24")
	pkts, err := trace.GenerateNormal(trace.NormalConfig{
		Seed: 30, Start: start, Flows: 1200,
		SrcPrefixes: []netaddr.Prefix{netaddr.MustParsePrefix("61.0.0.0/11")},
		DstPrefix:   target,
	})
	if err != nil {
		b.Fatal(err)
	}
	cache := netflow.NewCache(netflow.CacheConfig{ExpireOnFINRST: true})
	for _, p := range pkts {
		cache.Observe(p, 1)
	}
	cache.FlushAll()
	training := cache.Drain()

	var attackRecs []flow.Record
	for i, at := range []trace.AttackType{
		trace.AttackHTTPExploit, trace.AttackFTPExploit,
		trace.AttackSMTPExploit, trace.AttackDNSExploit,
	} {
		apkts, err := trace.Generate(at, trace.AttackConfig{
			Seed: int64(40 + i), Start: start.Add(time.Hour),
			Src: netaddr.MustParseAddr("70.1.1.1"), DstPrefix: target,
		})
		if err != nil {
			b.Fatal(err)
		}
		c2 := netflow.NewCache(netflow.CacheConfig{})
		for _, p := range apkts {
			c2.Observe(p, 1)
		}
		c2.FlushAll()
		attackRecs = append(attackRecs, c2.Drain()...)
	}

	for _, variant := range []struct {
		name    string
		disable bool
	}{{"partitioned", false}, {"flat", true}} {
		b.Run(variant.name, func(b *testing.B) {
			var hits int
			for i := 0; i < b.N; i++ {
				d, err := nns.Train(nns.DetectorConfig{DisablePartition: variant.disable}, training)
				if err != nil {
					b.Fatal(err)
				}
				hits = 0
				for _, r := range attackRecs {
					if d.Assess(r).Anomalous {
						hits++
					}
				}
			}
			b.ReportMetric(float64(hits), "exploit_flows_flagged")
		})
	}
}

// BenchmarkAblationApproxVsExact contrasts the KOR approximate search with
// brute force, reporting both speed and approximation excess.
func BenchmarkAblationApproxVsExact(b *testing.B) {
	cluster := buildNNSCluster(b, 400)
	st, err := nns.Build(nns.DefaultParams(), cluster)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("approx", func(b *testing.B) {
		excess := 0
		for i := 0; i < b.N; i++ {
			q := cluster[i%len(cluster)]
			a, ok := st.Search(q)
			if !ok {
				b.Fatal("no neighbor")
			}
			if e, ok := st.ExactSearch(q); ok {
				excess += a.Distance - e.Distance
			}
		}
		b.ReportMetric(float64(excess)/float64(b.N), "excess_bits/op")
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := st.ExactSearch(cluster[i%len(cluster)]); !ok {
				b.Fatal("no neighbor")
			}
		}
	})
}

// --- Tentpole: sharded parallel analysis throughput ---

// parallelBenchWorkload builds per-peer training flows plus suspect
// streams from unexpected blocks, so every benchmarked flow takes the
// expensive suspect path (scan + NNS). Promotion is disabled so the
// workload stays suspect-heavy no matter how long the benchmark runs.
func parallelBenchWorkload(b *testing.B, peers int) (analysis.Config, []analysis.LabeledRecord, []analysis.LabeledRecord) {
	b.Helper()
	cfg := analysis.Config{
		Mode: analysis.ModeEnhanced,
		EIA:  eia.Config{PromoteThreshold: 1 << 30},
	}
	start := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	target := netaddr.MustParsePrefix("192.0.2.0/24")
	drain := func(seed int64, flows int, prefix string, t time.Time) []flow.Record {
		pkts, err := trace.GenerateNormal(trace.NormalConfig{
			Seed: seed, Start: t, Flows: flows,
			SrcPrefixes: []netaddr.Prefix{netaddr.MustParsePrefix(prefix)},
			DstPrefix:   target,
		})
		if err != nil {
			b.Fatal(err)
		}
		cache := netflow.NewCache(netflow.CacheConfig{ExpireOnFINRST: true})
		for _, p := range pkts {
			cache.Observe(p, 1)
		}
		cache.FlushAll()
		return cache.Drain()
	}
	var labeled, suspects []analysis.LabeledRecord
	for p := 1; p <= peers; p++ {
		peer := eia.PeerAS(p)
		for _, r := range drain(int64(p), 300, itoa(32+p)+".0.0.0/11", start) {
			labeled = append(labeled, analysis.LabeledRecord{Peer: peer, Record: r})
		}
		for _, r := range drain(int64(100+p), 250, itoa(128+p)+".0.0.0/11", start.Add(time.Hour)) {
			suspects = append(suspects, analysis.LabeledRecord{Peer: peer, Record: r})
		}
	}
	// Round-robin interleave across peers so consecutive submissions land
	// on different shards, as the per-port receive loops would produce.
	byPeer := make(map[eia.PeerAS][]analysis.LabeledRecord)
	for _, s := range suspects {
		byPeer[s.Peer] = append(byPeer[s.Peer], s)
	}
	var interleaved []analysis.LabeledRecord
	for i := 0; ; i++ {
		added := false
		for p := 1; p <= peers; p++ {
			if q := byPeer[eia.PeerAS(p)]; i < len(q) {
				interleaved = append(interleaved, q[i])
				added = true
			}
		}
		if !added {
			break
		}
	}
	return cfg, labeled, interleaved
}

// BenchmarkParallelPipeline measures Enhanced-InFilter suspect-flow
// throughput of the sharded engine against the serial baseline (§6.4's
// per-flow cost, scaled out): flows/sec grows with shard count when cores
// are available, since NNS assessment dominates and shards share no
// mutable hot state. On a single-core host (GOMAXPROCS=1) the shard
// variants instead measure sharding overhead, which should stay within a
// few percent of serial.
func BenchmarkParallelPipeline(b *testing.B) {
	const peers = 8
	cfg, labeled, suspects := parallelBenchWorkload(b, peers)

	b.Run("serial", func(b *testing.B) {
		engine, err := analysis.Train(cfg, labeled)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := suspects[i%len(suspects)]
			engine.Process(s.Peer, s.Record)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "flows/sec")
	})
	for _, shards := range []int{1, 4, 8} {
		b.Run("shards-"+itoa(shards), func(b *testing.B) {
			engine, err := analysis.TrainParallel(analysis.ParallelConfig{
				Config: cfg,
				Shards: shards,
			}, labeled)
			if err != nil {
				b.Fatal(err)
			}
			defer engine.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := suspects[i%len(suspects)]
				if err := engine.Submit(s.Peer, s.Record); err != nil {
					b.Fatal(err)
				}
			}
			engine.Flush()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "flows/sec")
		})
	}
}

// --- Tentpole: end-to-end batched ingest throughput ---

// ingestBenchWorkload builds a trained BI engine plus pre-encoded export
// datagrams of legal traffic: replay sources equal training sources, so
// every record takes the cheapest (Match) path and the measurement
// isolates per-record ingest overhead — syscalls, decode, handoff — not
// analysis cost. eiaCfg selects the EIA configuration (the bloom-tier
// sub-benchmark enables the probabilistic fast tier; everything else
// runs exact-only). fam selects the stream's address families: "v4"
// encodes over NetFlow v5 (the pre-dual-stack wire format, unchanged so
// the gated baselines stay comparable), "v6" and "mixed" encode over
// IPFIX with per-family templates, mixed alternating the family every
// datagram. The returned setup datagrams (IPFIX templates) must be sent
// once before the timed replay; every returned data datagram carries
// exactly netflow.MaxRecords records.
func ingestBenchWorkload(b *testing.B, eiaCfg eia.Config, fam string) (*analysis.ParallelEngine, [][]byte, [][]byte) {
	b.Helper()
	start := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	v6pfx := netaddr.MustParsePrefix("2001:db8:1000::/48")
	recs := make([]flow.Record, 600)
	labeled := make([]analysis.LabeledRecord, len(recs))
	for i := range recs {
		key := flow.Key{
			// 61.0.0.0/11 spread: the training prefix of the testbed.
			Src: (netaddr.MustParseIPv4("61.0.0.0") + netaddr.IPv4(uint32(i)<<8|1)).Addr(),
			Dst: netaddr.MustParseAddr("192.0.2.1"), Proto: flow.ProtoTCP,
			SrcPort: uint16(1024 + i), DstPort: 80,
		}
		if fam == "v6" || (fam == "mixed" && (i/netflow.MaxRecords)%2 == 1) {
			key.Src = v6pfx.Nth(uint64(i)<<8 | 1)
			key.Dst = netaddr.MustParseAddr("2001:db8::1")
		}
		recs[i] = flow.Record{
			Key:     key,
			Packets: 10, Bytes: 4000,
			Start: start, End: start.Add(time.Second),
		}
		labeled[i] = analysis.LabeledRecord{Peer: 1, Record: recs[i]}
	}
	engine, err := analysis.TrainParallel(analysis.ParallelConfig{
		Config: analysis.Config{Mode: analysis.ModeBasic, EIA: eiaCfg},
		Shards: 1,
	}, labeled)
	if err != nil {
		b.Fatal(err)
	}
	boot := start.Add(-time.Hour)
	var setup, raws [][]byte
	var enc netflow.WireEncoder
	if fam == "v4" {
		enc = netflow.NewV5Encoder(boot, 1)
	} else {
		enc = netflow.NewIPFIXEncoder(1)
	}
	for i := 0; i < len(recs); i += netflow.MaxRecords {
		end := i + netflow.MaxRecords
		if end > len(recs) {
			end = len(recs)
		}
		for _, dg := range enc.Encode(recs[i:end], start) {
			if dg.Flows == 0 {
				setup = append(setup, dg.Raw) // template datagram
			} else {
				raws = append(raws, dg.Raw)
			}
		}
	}
	return engine, raws, setup
}

// benchIngestE2E replays UDP export datagrams through a live collector
// into the analysis engine and reports end-to-end records/sec. The
// sender paces against the collector's receive counter so the kernel
// socket buffer never overflows (no drops, so the drain barrier below
// terminates); the pacing window stays under the ~200 KiB default
// SO_RCVBUF the classic collector runs with.
func benchIngestE2E(b *testing.B, eiaCfg eia.Config, fam string, newIngest func(*analysis.ParallelEngine) ingestPath) {
	engine, raws, setup := ingestBenchWorkload(b, eiaCfg, fam)
	defer engine.Close()
	path := newIngest(engine)
	defer path.close()
	port, err := path.listen()
	if err != nil {
		b.Fatal(err)
	}
	conn, err := net.Dial("udp", "127.0.0.1:"+itoa(port))
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	// Announce the IPFIX templates (if any) once, outside the timed loop.
	for _, raw := range setup {
		if _, err := conn.Write(raw); err != nil {
			b.Fatal(err)
		}
	}
	sender, err := newBurstSender(conn.(*net.UDPConn))
	if err != nil {
		b.Fatal(err)
	}

	const recsPerDatagram = netflow.MaxRecords
	// In-flight bound: the classic collector runs on the default ~208 KiB
	// SO_RCVBUF, which the kernel accounts in skb truesize (~2 KiB per
	// 1.5 KiB datagram) — keep well under it so neither path ever drops.
	const window = 1024
	b.ResetTimer()
	sent := 0
	for i := 0; sent < b.N; {
		k, err := sender.send(raws, i, burstDatagrams)
		if err != nil {
			b.Fatal(err)
		}
		i += k
		sent += k * recsPerDatagram
		for sent-path.received() > window {
			time.Sleep(20 * time.Microsecond)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for path.received() < sent {
		if time.Now().After(deadline) {
			b.Fatalf("received %d of %d records (datagrams dropped?)", path.received(), sent)
		}
		time.Sleep(50 * time.Microsecond)
	}
	// Drain on processed records, not engine.Flush: the final partial
	// batch may still be waiting out the collector's flush timeout, in
	// which case nothing has been submitted for it yet.
	for engine.Stats().Processed < sent {
		if time.Now().After(deadline) {
			b.Fatalf("processed %d of %d records", engine.Stats().Processed, sent)
		}
		time.Sleep(50 * time.Microsecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "records/sec")
	if st := engine.Stats(); st.Processed < sent || st.Attacks != 0 {
		b.Fatalf("pipeline processed %d/%d records, %d attacks (want 0)", st.Processed, sent, st.Attacks)
	}
}

// ingestPath abstracts the two collector generations for the benchmark.
type ingestPath struct {
	listen   func() (int, error)
	received func() int
	close    func() error
}

// BenchmarkIngestE2E contrasts the classic per-record online path (one
// blocking read per datagram, one engine.Submit per record) with the
// batched path (recvmmsg reader, one SubmitBatch per accumulated batch,
// one EIA snapshot per batch), plus the batched path with the EIA Bloom
// fast tier enabled — the all-Match workload is the tier's worst case
// (every check probes the filters and still walks the trie), so
// batched-bloom ≈ batched proves enabling the tier costs the expected
// path nothing material. batched-v6 and batched-mixed replay the same
// workload as IPFIX streams of 16-byte-address records (all-v6, and
// alternating family per datagram), covering the dual-stack decode and
// check path end to end. The records/sec ratios are gated by
// scripts/bench.sh.
func BenchmarkIngestE2E(b *testing.B) {
	batchedIngest := func(engine *analysis.ParallelEngine) ingestPath {
		c := flowtools.New(flowtools.Config{
			ReadBuffer: 4 << 20,
		}, func(batch flowtools.Batch) {
			engine.SubmitBatch(1, batch.Records)
		})
		return ingestPath{
			listen:   func() (int, error) { return c.Listen(0) },
			received: func() int { r, _ := c.Stats(); return r },
			close:    c.Close,
		}
	}
	b.Run("per-record", func(b *testing.B) {
		benchIngestE2E(b, eia.Config{}, "v4", func(engine *analysis.ParallelEngine) ingestPath {
			c := flowtools.New(flowtools.Config{MaxRecords: 1}, func(batch flowtools.Batch) {
				for _, r := range batch.Records {
					engine.Submit(1, r)
				}
			})
			return ingestPath{
				listen:   func() (int, error) { return c.Listen(0) },
				received: func() int { r, _ := c.Stats(); return r },
				close:    c.Close,
			}
		})
	})
	b.Run("batched", func(b *testing.B) {
		benchIngestE2E(b, eia.Config{}, "v4", batchedIngest)
	})
	b.Run("batched-bloom", func(b *testing.B) {
		benchIngestE2E(b, eia.Config{BloomBitsPerEntry: 10}, "v4", batchedIngest)
	})
	b.Run("batched-v6", func(b *testing.B) {
		benchIngestE2E(b, eia.Config{}, "v6", batchedIngest)
	})
	b.Run("batched-mixed", func(b *testing.B) {
		benchIngestE2E(b, eia.Config{}, "mixed", batchedIngest)
	})
}

// --- Substrate micro-benchmarks ---

// BenchmarkEIACheck measures the Basic InFilter hot path.
func BenchmarkEIACheck(b *testing.B) {
	set := eia.NewSet(eia.Config{})
	for as := 1; as <= blocks.DefaultSources; as++ {
		alloc, err := blocks.EIAAllocation(as)
		if err != nil {
			b.Fatal(err)
		}
		for _, sb := range alloc {
			set.AddPrefix(eia.PeerAS(as), sb.Prefix())
		}
	}
	src := netaddr.MustParseIPv4("61.40.1.7")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set.Check(eia.PeerAS(i%10+1), (src + netaddr.IPv4(i%1024)).Addr())
	}
}

// benchEIASet builds the standard testbed EIA allocation.
func benchEIASet(b *testing.B) *eia.Set {
	b.Helper()
	set := eia.NewSet(eia.Config{})
	for as := 1; as <= blocks.DefaultSources; as++ {
		alloc, err := blocks.EIAAllocation(as)
		if err != nil {
			b.Fatal(err)
		}
		for _, sb := range alloc {
			set.AddPrefix(eia.PeerAS(as), sb.Prefix())
		}
	}
	return set
}

// rwmutexEIA is the pre-refactor concurrent EIA store: a Set behind a
// sync.RWMutex, every Check paying an RLock. It exists only as the
// benchmark baseline for the copy-on-write snapshot store that replaced
// it.
type rwmutexEIA struct {
	mu  sync.RWMutex
	set *eia.Set
}

func (s *rwmutexEIA) Check(peer eia.PeerAS, src netaddr.Addr) eia.Verdict {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.set.Check(peer, src)
}

// BenchmarkEIACheckParallel contrasts the RWMutex-guarded store with the
// lock-free copy-on-write snapshot store on the read-only hot path at
// 1, 4 and 16 concurrent readers. The RWMutex baseline degrades as
// readers contend on the lock's shared cache line; the snapshot store's
// atomic pointer load keeps per-check cost flat.
func BenchmarkEIACheckParallel(b *testing.B) {
	src := netaddr.MustParseIPv4("61.40.1.7")
	run := func(b *testing.B, readers int, check func(eia.PeerAS, netaddr.Addr) eia.Verdict) {
		b.ResetTimer()
		var wg sync.WaitGroup
		for w := 0; w < readers; w++ {
			n := b.N / readers
			if w < b.N%readers {
				n++
			}
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					check(eia.PeerAS(i%10+1), (src + netaddr.IPv4(i%1024)).Addr())
				}
			}(n)
		}
		wg.Wait()
	}
	for _, readers := range []int{1, 4, 16} {
		b.Run("rwmutex-"+itoa(readers), func(b *testing.B) {
			locked := &rwmutexEIA{set: benchEIASet(b)}
			run(b, readers, locked.Check)
		})
		b.Run("cow-"+itoa(readers), func(b *testing.B) {
			store := eia.NewStore(benchEIASet(b))
			run(b, readers, store.Check)
		})
	}
}

// BenchmarkEIACheckBatch contrasts per-record Check with the batched
// CheckBatch on a 256-record column: one iteration classifies the whole
// batch, so ns/op is directly comparable between the sub-benchmarks. The
// delta is the amortized snapshot load and trie-walk setup.
func BenchmarkEIACheckBatch(b *testing.B) {
	const n = 256
	peers := make([]eia.PeerAS, n)
	srcs := make([]netaddr.Addr, n)
	verdicts := make([]eia.Verdict, n)
	src := netaddr.MustParseIPv4("61.40.1.7")
	for i := range peers {
		peers[i] = eia.PeerAS(i%10 + 1)
		srcs[i] = (src + netaddr.IPv4(i%1024)).Addr()
	}
	b.Run("per-record", func(b *testing.B) {
		store := eia.NewStore(benchEIASet(b))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				verdicts[j] = store.Check(peers[j], srcs[j])
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		store := eia.NewStore(benchEIASet(b))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			store.CheckBatch(peers, srcs, verdicts)
		}
	})
}

// benchBloomWorkload builds a Store over roughly n pseudo-random /24
// prefixes spread across 16 peers, plus probe sources that are provably
// absent: every trained subnet is an even /24, every probe lands in an
// odd sibling /24, so each probe shares 23 bits with a real entry. That
// forces the exact path through a full-depth trie walk (the expensive
// miss, not an early divergence) while the Bloom fast tier answers the
// same probe from one filter block per length class.
func benchBloomWorkload(b *testing.B, n int, cfg eia.Config) (*eia.Store, []netaddr.Addr) {
	b.Helper()
	const probeCount = 4096
	set := eia.NewSet(cfg)
	srcs := make([]netaddr.Addr, 0, probeCount)
	rng := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		subnet := uint32(rng>>42) << 1 // even /24 subnet under 0.0.0.0/1
		set.AddPrefix(eia.PeerAS(i%16+1), netaddr.PrefixFrom4(netaddr.IPv4(subnet)<<8, 24))
		if len(srcs) < cap(srcs) {
			srcs = append(srcs, (netaddr.IPv4(subnet|1)<<8 | netaddr.IPv4(i)&0xff).Addr())
		}
	}
	return eia.NewStore(set), srcs
}

// benchV6Subnet48 builds the 2001:SSSS:SSSS::/48 prefix for a 32-bit
// subnet id — the v6 analog of the even-/24 trick above, with the id
// occupying bits 16..48 so sibling subnets share 47 leading bits.
func benchV6Subnet48(sub uint32) netaddr.Prefix {
	var a [16]byte
	a[0], a[1] = 0x20, 0x01
	a[2], a[3], a[4], a[5] = byte(sub>>24), byte(sub>>16), byte(sub>>8), byte(sub)
	return netaddr.MustPrefix(netaddr.AddrFrom16(a), 48)
}

// benchV6Probe returns a host address inside the (absent) odd sibling of
// a trained even /48.
func benchV6Probe(sub uint32, host uint64) netaddr.Addr {
	var a [16]byte
	a[0], a[1] = 0x20, 0x01
	a[2], a[3], a[4], a[5] = byte(sub>>24), byte(sub>>16), byte(sub>>8), byte(sub)
	a[14], a[15] = byte(host>>8), byte(host)
	return netaddr.AddrFrom16(a)
}

// benchBloomWorkload6 is benchBloomWorkload over IPv6: n pseudo-random
// even /48s across 16 peers, probes in the odd sibling /48s so the exact
// path walks 47 shared bits before diverging.
func benchBloomWorkload6(b *testing.B, n int, cfg eia.Config) (*eia.Store, []netaddr.Addr) {
	b.Helper()
	const probeCount = 4096
	set := eia.NewSet(cfg)
	srcs := make([]netaddr.Addr, 0, probeCount)
	rng := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		sub := uint32(rng>>40) << 1 // even /48 id
		set.AddPrefix(eia.PeerAS(i%16+1), benchV6Subnet48(sub))
		if len(srcs) < cap(srcs) {
			srcs = append(srcs, benchV6Probe(sub|1, uint64(i)))
		}
	}
	return eia.NewStore(set), srcs
}

// benchBloomWorkloadMixed splits the set between the families and
// alternates probe families record by record, the dual-stack worst case
// for the per-family filter banks.
func benchBloomWorkloadMixed(b *testing.B, n int, cfg eia.Config) (*eia.Store, []netaddr.Addr) {
	b.Helper()
	const probeCount = 4096
	set := eia.NewSet(cfg)
	srcs := make([]netaddr.Addr, 0, probeCount)
	rng := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		if i%2 == 0 {
			subnet := uint32(rng>>42) << 1
			set.AddPrefix(eia.PeerAS(i%16+1), netaddr.PrefixFrom4(netaddr.IPv4(subnet)<<8, 24))
			if len(srcs) < cap(srcs) {
				srcs = append(srcs, (netaddr.IPv4(subnet|1)<<8 | netaddr.IPv4(i)&0xff).Addr())
			}
		} else {
			sub := uint32(rng>>40) << 1
			set.AddPrefix(eia.PeerAS(i%16+1), benchV6Subnet48(sub))
			if len(srcs) < cap(srcs) {
				srcs = append(srcs, benchV6Probe(sub|1, uint64(i)))
			}
		}
	}
	return eia.NewStore(set), srcs
}

// BenchmarkEIACheckBloomTier measures the spoofed-flood hot case — every
// probed source absent from the EIA trie — at 10x and 1000x set scale,
// exact-only (trie) versus the Bloom fast tier (bloom), for a v4 set
// (the original names), a v6 set (-v6-) and a half-and-half set probed
// with alternating families (-mixed-). The trie walk chases dependent
// pointers through a structure whose footprint grows with the set; the
// blocked Bloom probe touches one cache line per filter per length
// class regardless of scale or family width. scripts/bench.sh gates
// bloom-1000x <= 1.2x bloom-10x while the trie baseline is left to
// degrade, and gates the v4 per-check cost against the pre-dual-stack
// baseline so the 128-bit key can't silently tax the v4 hot path.
func BenchmarkEIACheckBloomTier(b *testing.B) {
	const base = 1000 // prefixes at 1x
	workloads := []struct {
		name  string
		build func(*testing.B, int, eia.Config) (*eia.Store, []netaddr.Addr)
	}{
		{"", benchBloomWorkload},
		{"v6-", benchBloomWorkload6},
		{"mixed-", benchBloomWorkloadMixed},
	}
	for _, scale := range []int{10, 1000} {
		for _, w := range workloads {
			for _, tier := range []struct {
				name string
				cfg  eia.Config
			}{
				{"trie", eia.Config{}},
				{"bloom", eia.Config{BloomBitsPerEntry: 10}},
			} {
				b.Run(tier.name+"-"+w.name+itoa(scale)+"x", func(b *testing.B) {
					store, srcs := w.build(b, base*scale, tier.cfg)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						store.Check(eia.PeerAS(i%16+1), srcs[i%len(srcs)])
					}
				})
			}
		}
	}
}

// BenchmarkScanSuspect measures the per-suspect cost of the two scan
// backends as the distinct probe cardinality grows 100x: a one-source
// network scan fanning out over `scale` distinct target hosts on one
// port. The streaming sketch's state is bounded (KMV registers capped
// by SketchK, register tables by MaxRegisters), so a scan 100x wider
// must cost about the same per suspect — bench.sh gates sketch-1000x at
// <= 1.2x sketch-10x. The ring rows are recorded for contrast: the ring
// is also flat per suspect, but only because its 200-entry window has
// long since saturated and is silently forgetting the scan it is
// supposed to be counting (see TestSketchDivergesOnlyBeyondRingCapacity).
func BenchmarkScanSuspect(b *testing.B) {
	const base = 100
	for _, bk := range []struct {
		name  string
		exact bool
	}{{"sketch", false}, {"ring", true}} {
		for _, scale := range []int{10, 1000} {
			b.Run(bk.name+"-"+itoa(scale)+"x", func(b *testing.B) {
				distinct := base * scale
				probes := make([]flow.Record, distinct)
				for i := range probes {
					probes[i] = flow.Record{
						Key: flow.Key{
							Src:     netaddr.IPv4(0xc9090909).Addr(),
							Dst:     netaddr.IPv4(uint32(0x0a000000 + i)).Addr(),
							Proto:   flow.ProtoUDP,
							SrcPort: uint16(1024 + i%60000),
							DstPort: 1434,
						},
						Packets: 1, Bytes: 404,
					}
				}
				a := scan.New(scan.Config{ExactBuffer: bk.exact})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					a.Add(probes[i%distinct])
				}
			})
		}
	}
}

// BenchmarkNetFlowCodec round-trips a full 30-record v5 datagram through
// the version-agnostic encode/decode path.
func BenchmarkNetFlowCodec(b *testing.B) {
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	recs := make([]flow.Record, 0, netflow.MaxRecords)
	for i := 0; i < netflow.MaxRecords; i++ {
		recs = append(recs, flow.Record{
			Key: flow.Key{
				Src: netaddr.IPv4(uint32(i)).Addr(), Dst: netaddr.IPv4(0xc0000201).Addr(),
				Proto: flow.ProtoTCP, DstPort: 80,
			},
			Packets: 10, Bytes: 4000,
			Start: boot.Add(time.Second), End: boot.Add(2 * time.Second),
		})
	}
	db := netflow.NewDecodeBuffer(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dgs := netflow.NewV5Encoder(boot, 1).Encode(recs, boot.Add(time.Minute))
		if len(dgs) != 1 {
			b.Fatalf("encoded %d datagrams", len(dgs))
		}
		if _, err := netflow.Decode(dgs[0].Raw, db); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnaryEncode measures flow-statistics encoding into {0,1}^720.
func BenchmarkUnaryEncode(b *testing.B) {
	enc := nns.MustDefaultEncoder()
	s := flow.Stats{Bytes: 20000, Packets: 30, DurationMS: 1500, BitRate: 100000, PacketRate: 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(s)
	}
}

// BenchmarkDagflowReplay measures trace-to-NetFlow replay throughput.
func BenchmarkDagflowReplay(b *testing.B) {
	start := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	pkts, err := trace.GenerateNormal(trace.NormalConfig{
		Seed: 1, Start: start, Flows: 500,
		SrcPrefixes: []netaddr.Prefix{netaddr.MustParsePrefix("61.0.0.0/11")},
		DstPrefix:   netaddr.MustParsePrefix("192.0.2.0/24"),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst := dagflowInstance(start)
		if _, err := inst.Replay(pkts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(pkts)), "packets/replay")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
