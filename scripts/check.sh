#!/bin/sh
# Expanded tier-1 gate: vet + build + race-enabled tests + fuzz smoke.
#
# The race run includes the serial/parallel equivalence stress test
# (internal/analysis/parallel_test.go), the batch/serial equivalence
# tests at batch sizes 1, 16 and 256 (internal/analysis/batch_test.go —
# batched submission must be observationally identical to per-record
# submission, including across mid-batch promotions), the cluster-mode
# e2e suite (cmd/infilterd/cluster_daemon_test.go — two-node snapshot
# convergence against a single-node union daemon, peer-down isolation,
# and the 3-node in-process kill-one test inside a goroutine-leak gate)
# and every goroutine-leak test, so a pass means the sharded pipeline
# is race-clean under concurrent load, batching changes no verdict,
# replication converges without leaking workers, and no background
# worker outlives its Close. The fuzz smoke discovers every
# native fuzz target in the module and runs each briefly against fresh
# random inputs on top of the checked-in seed corpus, so new targets are
# picked up without editing this script.
#
# Usage: scripts/check.sh [fuzztime]   (default fuzz smoke: 5s per target)
set -eu
cd "$(dirname "$0")/.."
FUZZTIME="${1:-5s}"

echo "==> go vet ./..."
go vet ./...

# CI pins staticcheck in its lint job; locally it gates only when the
# binary is already on PATH, because the dev container has no network.
if command -v staticcheck >/dev/null 2>&1; then
	echo "==> staticcheck ./..."
	staticcheck ./...
else
	echo "==> staticcheck not installed; skipping (CI lint job runs it)"
fi

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> fuzz smoke (${FUZZTIME} per target)"
# `go test -list` prints each package's matching targets followed by its
# "ok <import-path> ..." line; pair them up into "pkg target" rows.
TARGETS=$(go test -list '^Fuzz' ./... | awk '
	/^Fuzz/   { names[n++] = $1; next }
	$1 == "ok" { for (i = 0; i < n; i++) print $2, names[i]; n = 0 }')
if [ -z "$TARGETS" ]; then
	echo "error: fuzz smoke found no fuzz targets" >&2
	exit 1
fi
echo "$TARGETS" | while read -r pkg target; do
	echo "--> $pkg $target"
	go test -run=NoSuchTest -fuzz="^${target}\$" -fuzztime="$FUZZTIME" "$pkg" || exit 1
done

echo "==> all checks passed"
