#!/bin/sh
# Expanded tier-1 gate: vet + build + race-enabled tests + fuzz smoke.
#
# The race run includes the serial/parallel equivalence stress test
# (internal/analysis/parallel_test.go) and every goroutine-leak test, so a
# pass means the sharded pipeline is race-clean under concurrent load and
# no background worker outlives its Close. The fuzz smoke runs each native
# fuzz target briefly against fresh random inputs on top of the checked-in
# seed corpus.
#
# Usage: scripts/check.sh [fuzztime]   (default fuzz smoke: 5s per target)
set -eu
cd "$(dirname "$0")/.."
FUZZTIME="${1:-5s}"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> fuzz smoke (${FUZZTIME} per target)"
go test -run=NoSuchTest -fuzz='^FuzzDecodeDatagram$' -fuzztime="$FUZZTIME" ./internal/netflow
go test -run=NoSuchTest -fuzz='^FuzzCompileFilter$' -fuzztime="$FUZZTIME" ./internal/flowtools

echo "==> all checks passed"
