#!/bin/sh
# Bench-regression harness: runs the curated hot-path benchmarks with
# fixed settings and writes machine-readable results to BENCH_PR10.json.
#
# The curated set covers the online path end to end — the sharded
# pipeline (BenchmarkParallelPipeline, serial vs 1/4/8 shards), the
# per-stage costs (EIA check serial, parallel and batched — RWMutex
# baseline vs the lock-free COW snapshot store — NetFlow codec, unary
# encode, BI/EI flow latency), the per-version flow-export decoders
# (v5, v9, IPFIX batch decode through the reusable DecodeBuffer), and
# the telemetry hot path (counter inc, histogram observe, snapshot
# merge). The slow paper-validation benchmarks (figures, tables,
# ablations) are deliberately excluded: they measure replay fidelity,
# not regressions.
#
# BenchmarkIngestE2E replays pre-encoded NetFlow v5 datagrams over UDP
# through the full collector -> decode -> pipeline path and reports
# records/sec for the per-record baseline (classic collector + Submit)
# and the batched path (recvmmsg reader pool + SubmitBatch). It runs
# with its own, longer benchtime (E2E_BENCHTIME) because each sample
# carries socket and pacing overhead.
#
# Six gates fail the script:
#   - steady-state template-driven decode must be allocation-free
#     (BenchmarkDecodeV5Batch / BenchmarkDecodeV9Batch: 0 allocs/op);
#   - the batched ingest path must not regress below the per-record
#     baseline (BenchmarkIngestE2E/batched records/sec must exceed
#     BenchmarkIngestE2E/per-record). The speedup ratio is printed and
#     recorded in the JSON; the PR-6 acceptance bar on the bench box
#     is >= 3x;
#   - the EIA Bloom fast tier must stay flat as the prefix set grows:
#     BenchmarkEIACheckBloomTier/bloom-1000x ns/op must be <= 1.2x
#     bloom-10x. This benchmark runs BLOOM_COUNT times and the gate
#     compares per-name minimums — the noise-robust estimator — because
#     a 30 ns/op measurement on a shared runner swings more run-to-run
#     than the 1.2x margin. The trie-only baseline at the same scales
#     is recorded for contrast but not gated — it is the thing that
#     degrades;
#   - enabling the Bloom tier must not tax the expected-traffic path:
#     BenchmarkIngestE2E/batched-bloom records/sec must be >= 0.95x
#     BenchmarkIngestE2E/batched. Like the flatness gate, the ingest
#     benchmark runs E2E_COUNT times and the gates compare per-name
#     maximum records/sec, since socket-path noise between sub-
#     benchmarks of a single run exceeds the 5% margin;
#   - the dual-stack address core must not tax the v4 hot path: the
#     min-of-runs v4 per-check cost (BenchmarkEIACheckBloomTier
#     trie-10x and bloom-10x) must stay <= 1.10x the baseline recorded
#     in BENCH_PR8.json ($BASELINE to override, set it to /dev/null to
#     skip when no baseline file exists);
#   - cluster mode must not tax the verdict path: cluster replication
#     rides a background goroutine off the engine's snapshot store, so
#     the min-of-runs single-flow verdict latency (BenchmarkLatencyBasic
#     and BenchmarkLatencyEnhanced, LAT_COUNT runs) must stay <= 1.05x
#     the $BASELINE values. Min-of-runs is the noise-robust estimator
#     that makes a 5% margin workable on a shared box;
#   - the streaming scan sketch must stay flat as scan cardinality
#     grows: BenchmarkScanSuspect/sketch-1000x ns/op must be <= 1.2x
#     sketch-10x (min of SCAN_COUNT runs). The ring rows at the same
#     scales are recorded for contrast but not gated — the ring is flat
#     only because its bounded window saturates and forgets.
#
# The v6 (-v6-) and mixed (-mixed-) bloom-tier and ingest cases are
# recorded for contrast but not gated: they have no pre-dual-stack
# baseline to regress against.
#
# CI uploads BENCH_*.json as a non-blocking artifact so reviewers can
# diff ns/op, allocs/op and records/sec across PRs without the job
# gating merges.
#
# Usage: scripts/bench.sh [output.json]   (default: BENCH_PR10.json)
set -eu
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_PR10.json}"
BASELINE="${BASELINE:-BENCH_PR9.json}"
BENCHTIME="${BENCHTIME:-300ms}"
E2E_BENCHTIME="${E2E_BENCHTIME:-1s}"
COUNT="${COUNT:-1}"
BLOOM_COUNT="${BLOOM_COUNT:-5}"
E2E_COUNT="${E2E_COUNT:-3}"
LAT_COUNT="${LAT_COUNT:-5}"
SCAN_COUNT="${SCAN_COUNT:-5}"

PATTERN='^(BenchmarkParallelPipeline|BenchmarkEIACheck|BenchmarkEIACheckParallel.*|BenchmarkEIACheckBatch.*|BenchmarkNetFlowCodec|BenchmarkDecodeV5Batch|BenchmarkDecodeV9Batch|BenchmarkDecodeIPFIXBatch|BenchmarkUnaryEncode|BenchmarkTelemetry.*)$'

echo "==> go test -bench (benchtime=${BENCHTIME} count=${COUNT})"
RAW=$(go test -run='^$' -bench="$PATTERN" -benchmem \
	-benchtime="$BENCHTIME" -count="$COUNT" . ./internal/netflow ./internal/telemetry)
echo "$RAW"


echo "==> go test -bench BenchmarkLatency (benchtime=${BENCHTIME} count=${LAT_COUNT})"
LATALL=$(go test -run='^$' -bench='^(BenchmarkLatencyBasic|BenchmarkLatencyEnhanced)$' -benchmem \
	-benchtime="$BENCHTIME" -count="$LAT_COUNT" .)
echo "$LATALL"
# Reduce to the per-name minimum ns/op, the same estimator the baseline
# file records.
LATRAW=$(echo "$LATALL" | awk '
/^BenchmarkLatency/ {
	if (!($1 in min) || $3 + 0 < min[$1]) { min[$1] = $3 + 0; line[$1] = $0 }
	order[$1] = NR
}
END { for (k in line) print order[k], line[k] }' | sort -n | cut -d" " -f2-)

echo "==> go test -bench BenchmarkEIACheckBloomTier (benchtime=${BENCHTIME} count=${BLOOM_COUNT})"
BLOOMALL=$(go test -run='^$' -bench='^BenchmarkEIACheckBloomTier$' -benchmem \
	-benchtime="$BENCHTIME" -count="$BLOOM_COUNT" .)
echo "$BLOOMALL"
# Reduce to the per-name minimum ns/op; the gate and the JSON both use
# the reduced rows.
BLOOMRAW=$(echo "$BLOOMALL" | awk '
/^BenchmarkEIACheckBloomTier\// {
	if (!($1 in min) || $3 + 0 < min[$1]) { min[$1] = $3 + 0; line[$1] = $0 }
	order[$1] = NR
}
END { for (k in line) print order[k], line[k] }' | sort -n | cut -d" " -f2-)

echo "==> go test -bench BenchmarkScanSuspect (benchtime=${BENCHTIME} count=${SCAN_COUNT})"
SCANALL=$(go test -run='^$' -bench='^BenchmarkScanSuspect$' -benchmem \
	-benchtime="$BENCHTIME" -count="$SCAN_COUNT" .)
echo "$SCANALL"
# Reduce to the per-name minimum ns/op, the same estimator the bloom
# flatness gate uses.
SCANRAW=$(echo "$SCANALL" | awk '
/^BenchmarkScanSuspect\// {
	if (!($1 in min) || $3 + 0 < min[$1]) { min[$1] = $3 + 0; line[$1] = $0 }
	order[$1] = NR
}
END { for (k in line) print order[k], line[k] }' | sort -n | cut -d" " -f2-)

echo "==> go test -bench BenchmarkIngestE2E (benchtime=${E2E_BENCHTIME} count=${E2E_COUNT})"
E2EALL=$(go test -run='^$' -bench='^BenchmarkIngestE2E$' \
	-benchtime="$E2E_BENCHTIME" -count="$E2E_COUNT" .)
echo "$E2EALL"
# Reduce to the per-name maximum records/sec (best-observed throughput).
E2ERAW=$(echo "$E2EALL" | awk '
/^BenchmarkIngestE2E\// {
	rps = 0
	for (i = 2; i <= NF; i++) if ($i == "records/sec") rps = $(i - 1) + 0
	if (!($1 in max) || rps > max[$1]) { max[$1] = rps; line[$1] = $0 }
	order[$1] = NR
}
END { for (k in line) print order[k], line[k] }' | sort -n | cut -d" " -f2-)

echo "$RAW" | awk '
/^BenchmarkDecode(V5|V9)Batch/ {
	for (i = 2; i <= NF; i++) {
		if ($i == "allocs/op" && $(i - 1) != "0") {
			printf "error: %s allocates (%s allocs/op); steady-state decode must be allocation-free\n",
				$1, $(i - 1) > "/dev/stderr"
			bad = 1
		}
		if ($i == "allocs/op") seen++
	}
}
END {
	if (seen < 2) { print "error: zero-alloc decode benchmarks missing from output" > "/dev/stderr"; exit 1 }
	if (bad) exit 1
}'

echo "$BLOOMRAW" | awk '
/^BenchmarkEIACheckBloomTier\// {
	ns = 0
	for (i = 2; i <= NF; i++) if ($i == "ns/op") ns = $(i - 1)
	if (index($1, "/bloom-10x") > 0)   b10 = ns
	if (index($1, "/bloom-1000x") > 0) b1000 = ns
	if (index($1, "/trie-10x") > 0)    t10 = ns
	if (index($1, "/trie-1000x") > 0)  t1000 = ns
}
END {
	if (b10 == 0 || b1000 == 0) {
		print "error: BenchmarkEIACheckBloomTier bloom-10x/bloom-1000x results missing" > "/dev/stderr"
		exit 1
	}
	printf "==> eia bloom tier (min of runs): trie %.1f -> %.1f ns/op, bloom %.1f -> %.1f ns/op (%.2fx at 1000x set size)\n",
		t10, t1000, b10, b1000, b1000 / b10
	if (b1000 > 1.2 * b10) {
		printf "error: bloom fast tier is not flat: %.1f ns/op at 1000x vs %.1f ns/op at 10x (> 1.2x)\n",
			b1000, b10 > "/dev/stderr"
		exit 1
	}
}'

echo "$SCANRAW" | awk '
/^BenchmarkScanSuspect\// {
	ns = 0
	for (i = 2; i <= NF; i++) if ($i == "ns/op") ns = $(i - 1)
	if (index($1, "/sketch-10x") > 0)   s10 = ns
	if (index($1, "/sketch-1000x") > 0) s1000 = ns
	if (index($1, "/ring-10x") > 0)     r10 = ns
	if (index($1, "/ring-1000x") > 0)   r1000 = ns
}
END {
	if (s10 == 0 || s1000 == 0) {
		print "error: BenchmarkScanSuspect sketch-10x/sketch-1000x results missing" > "/dev/stderr"
		exit 1
	}
	printf "==> scan suspect cost (min of runs): sketch %.1f -> %.1f ns/op (%.2fx at 100x cardinality), ring %.1f -> %.1f ns/op (saturated, not gated)\n",
		s10, s1000, s1000 / s10, r10, r1000
	if (s1000 > 1.2 * s10) {
		printf "error: scan sketch is not flat: %.1f ns/op at 1000x vs %.1f ns/op at 10x (> 1.2x)\n",
			s1000, s10 > "/dev/stderr"
		exit 1
	}
}'

echo "$E2ERAW" | awk '
/^BenchmarkIngestE2E\// {
	rps = 0
	for (i = 2; i <= NF; i++) if ($i == "records/sec") rps = $(i - 1)
	if (index($1, "/per-record") > 0)         base = rps
	else if (index($1, "/batched-bloom") > 0) bloom = rps
	else if (index($1, "/batched-v6") > 0)    v6 = rps
	else if (index($1, "/batched-mixed") > 0) mixed = rps
	else if (index($1, "/batched") > 0)       batched = rps
}
END {
	if (base == 0 || batched == 0 || bloom == 0) {
		print "error: BenchmarkIngestE2E per-record/batched/batched-bloom results missing" > "/dev/stderr"
		exit 1
	}
	ratio = batched / base
	printf "==> ingest e2e: per-record %.0f rec/s, batched %.0f rec/s (%.2fx), batched-bloom %.0f rec/s (%.2fx of batched)\n",
		base, batched, ratio, bloom, bloom / batched
	if (v6 > 0 || mixed > 0)
		printf "==> ingest e2e dual-stack (not gated): batched-v6 %.0f rec/s, batched-mixed %.0f rec/s\n", v6, mixed
	if (batched <= base) {
		printf "error: batched ingest (%.0f rec/s) regressed below the per-record baseline (%.0f rec/s)\n",
			batched, base > "/dev/stderr"
		exit 1
	}
	if (bloom < 0.95 * batched) {
		printf "error: bloom-tier batched ingest (%.0f rec/s) fell below 0.95x the exact batched baseline (%.0f rec/s)\n",
			bloom, batched > "/dev/stderr"
		exit 1
	}
}'

# Gate: verdict latency against the previous PR's baseline. Cluster
# mode must leave the per-flow verdict path untouched (replication is a
# background sender off the snapshot store), so min-of-runs latency may
# not exceed 1.05x the recorded baseline.
if [ -f "$BASELINE" ]; then
	base_bi=$(sed -n 's/.*"BenchmarkLatencyBasic".*"ns_per_op": \([0-9.eE+-]*\),.*/\1/p' "$BASELINE")
	base_ei=$(sed -n 's/.*"BenchmarkLatencyEnhanced".*"ns_per_op": \([0-9.eE+-]*\),.*/\1/p' "$BASELINE")
	if [ -n "$base_bi" ] && [ -n "$base_ei" ]; then
		echo "$LATRAW" | awk -v bbi="$base_bi" -v bei="$base_ei" -v basefile="$BASELINE" '
		/^BenchmarkLatency/ {
			ns = 0
			for (i = 2; i <= NF; i++) if ($i == "ns/op") ns = $(i - 1)
			if (index($1, "LatencyBasic") > 0)    bi = ns
			if (index($1, "LatencyEnhanced") > 0) ei = ns
		}
		END {
			if (bi == 0 || ei == 0) {
				print "error: verdict latency results missing for the baseline gate" > "/dev/stderr"
				exit 1
			}
			printf "==> verdict latency vs %s: BI %.1f ns/op (baseline %.1f, %.2fx), EI %.1f ns/op (baseline %.1f, %.2fx)\n",
				basefile, bi, bbi, bi / bbi, ei, bei, ei / bei
			bad = 0
			if (bi > 1.05 * bbi) {
				printf "error: BI verdict latency %.1f ns/op exceeds 1.05x the baseline %.1f ns/op\n",
					bi, bbi > "/dev/stderr"
				bad = 1
			}
			if (ei > 1.05 * bei) {
				printf "error: EI verdict latency %.1f ns/op exceeds 1.05x the baseline %.1f ns/op\n",
					ei, bei > "/dev/stderr"
				bad = 1
			}
			if (bad) exit 1
		}'
	else
		echo "==> warning: $BASELINE has no verdict latency rows; latency gate skipped"
	fi
else
	echo "==> warning: no baseline file $BASELINE; verdict latency gate skipped"
fi

# Gate: v4 per-check cost against the pre-dual-stack baseline. The
# baseline file records min-of-runs ns/op for the same benchmark names
# on the same box; compare the reduced (min) rows of this run.
if [ -f "$BASELINE" ]; then
	base_trie=$(sed -n 's/.*"BenchmarkEIACheckBloomTier\/trie-10x".*"ns_per_op": \([0-9.eE+-]*\),.*/\1/p' "$BASELINE")
	base_bloom=$(sed -n 's/.*"BenchmarkEIACheckBloomTier\/bloom-10x".*"ns_per_op": \([0-9.eE+-]*\),.*/\1/p' "$BASELINE")
	if [ -n "$base_trie" ] && [ -n "$base_bloom" ]; then
		echo "$BLOOMRAW" | awk -v bt="$base_trie" -v bb="$base_bloom" -v basefile="$BASELINE" '
		/^BenchmarkEIACheckBloomTier\// {
			ns = 0
			for (i = 2; i <= NF; i++) if ($i == "ns/op") ns = $(i - 1)
			if (index($1, "/trie-10x") > 0)  t10 = ns
			if (index($1, "/bloom-10x") > 0) b10 = ns
		}
		END {
			if (t10 == 0 || b10 == 0) {
				print "error: v4 per-check results missing for the baseline gate" > "/dev/stderr"
				exit 1
			}
			printf "==> v4 per-check vs %s: trie %.1f ns/op (baseline %.1f, %.2fx), bloom %.1f ns/op (baseline %.1f, %.2fx)\n",
				basefile, t10, bt, t10 / bt, b10, bb, b10 / bb
			bad = 0
			if (t10 > 1.10 * bt) {
				printf "error: v4 exact per-check cost %.1f ns/op exceeds 1.10x the pre-dual-stack baseline %.1f ns/op\n",
					t10, bt > "/dev/stderr"
				bad = 1
			}
			if (b10 > 1.10 * bb) {
				printf "error: v4 bloom-tier per-check cost %.1f ns/op exceeds 1.10x the pre-dual-stack baseline %.1f ns/op\n",
					b10, bb > "/dev/stderr"
				bad = 1
			}
			if (bad) exit 1
		}'
	else
		echo "==> warning: $BASELINE has no v4 per-check rows; baseline gate skipped"
	fi
else
	echo "==> warning: no baseline file $BASELINE; v4 per-check gate skipped"
fi

# Gate: batched ingest throughput against the previous PR's baseline.
# The sketch backend and the TTL hooks ride the same online path, so
# best-of-runs batched records/sec may not fall below 0.95x the
# recorded baseline.
if [ -f "$BASELINE" ]; then
	base_rps=$(sed -n 's/.*"BenchmarkIngestE2E\/batched".*"records_per_sec": \([0-9.eE+-]*\)}.*/\1/p' "$BASELINE")
	if [ -n "$base_rps" ]; then
		echo "$E2ERAW" | awk -v brps="$base_rps" -v basefile="$BASELINE" '
		/^BenchmarkIngestE2E\// {
			rps = 0
			for (i = 2; i <= NF; i++) if ($i == "records/sec") rps = $(i - 1)
			if (index($1, "/batched-") == 0 && index($1, "/batched") > 0) batched = rps
		}
		END {
			if (batched == 0) {
				print "error: batched ingest result missing for the baseline gate" > "/dev/stderr"
				exit 1
			}
			printf "==> batched ingest vs %s: %.0f rec/s (baseline %.0f, %.2fx)\n",
				basefile, batched, brps, batched / brps
			if (batched < 0.95 * brps) {
				printf "error: batched ingest %.0f rec/s fell below 0.95x the baseline %.0f rec/s\n",
					batched, brps > "/dev/stderr"
				exit 1
			}
		}'
	else
		echo "==> warning: $BASELINE has no batched ingest row; ingest baseline gate skipped"
	fi
else
	echo "==> warning: no baseline file $BASELINE; ingest baseline gate skipped"
fi

{ echo "$RAW"; echo "$LATRAW"; echo "$BLOOMRAW"; echo "$SCANRAW"; echo "$E2ERAW"; } | awk -v goversion="$(go env GOVERSION)" \
	-v benchtime="$BENCHTIME" -v count="$COUNT" '
BEGIN {
	printf "{\n  \"schema\": \"infilter-bench/2\",\n"
	printf "  \"go\": \"%s\",\n", goversion
	printf "  \"benchtime\": \"%s\",\n  \"count\": %s,\n", benchtime, count
	printf "  \"results\": ["
	n = 0
}
/^Benchmark/ {
	name = $1; ns = ""; bytes = "0"; allocs = "0"; rps = "0"
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op")       ns = $(i - 1)
		if ($i == "B/op")        bytes = $(i - 1)
		if ($i == "allocs/op")   allocs = $(i - 1)
		if ($i == "records/sec") rps = $(i - 1)
	}
	if (ns == "") next
	if (n++) printf ","
	printf "\n    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"records_per_sec\": %s}",
		name, ns, bytes, allocs, rps
}
END {
	if (n == 0) { print "error: no benchmark results parsed" > "/dev/stderr"; exit 1 }
	printf "\n  ]\n}\n"
}' >"$OUT"

echo "==> wrote $(grep -c '"name"' "$OUT") results to $OUT"
