#!/bin/sh
# Bench-regression harness: runs the curated hot-path benchmarks with
# fixed settings and writes machine-readable results to BENCH_PR4.json.
#
# The curated set covers the online path end to end — the sharded
# pipeline (BenchmarkParallelPipeline, serial vs 1/4/8 shards), the
# per-stage costs (EIA check serial and parallel — RWMutex baseline vs
# the lock-free COW snapshot store — NetFlow codec, unary encode, BI/EI flow
# latency), the per-version flow-export decoders (v5, v9, IPFIX batch
# decode through the reusable DecodeBuffer), and the telemetry hot path
# (counter inc, histogram observe, snapshot merge). The slow
# paper-validation benchmarks (figures, tables, ablations) are
# deliberately excluded: they measure replay fidelity, not regressions.
#
# Steady-state template-driven decode is required to be allocation-free:
# the script fails if BenchmarkDecodeV5Batch or BenchmarkDecodeV9Batch
# report nonzero allocs/op.
#
# CI uploads BENCH_PR4.json as a non-blocking artifact so reviewers can
# diff ns/op and allocs/op across PRs without the job gating merges.
#
# Usage: scripts/bench.sh [output.json]   (default: BENCH_PR4.json)
set -eu
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_PR4.json}"
BENCHTIME="${BENCHTIME:-300ms}"
COUNT="${COUNT:-1}"

PATTERN='^(BenchmarkParallelPipeline|BenchmarkLatencyBasic|BenchmarkLatencyEnhanced|BenchmarkEIACheck|BenchmarkEIACheckParallel.*|BenchmarkNetFlowCodec|BenchmarkDecodeV5Batch|BenchmarkDecodeV9Batch|BenchmarkDecodeIPFIXBatch|BenchmarkUnaryEncode|BenchmarkTelemetry.*)$'

echo "==> go test -bench (benchtime=${BENCHTIME} count=${COUNT})"
RAW=$(go test -run='^$' -bench="$PATTERN" -benchmem \
	-benchtime="$BENCHTIME" -count="$COUNT" . ./internal/netflow ./internal/telemetry)
echo "$RAW"

echo "$RAW" | awk '
/^BenchmarkDecode(V5|V9)Batch/ {
	for (i = 2; i <= NF; i++) {
		if ($i == "allocs/op" && $(i - 1) != "0") {
			printf "error: %s allocates (%s allocs/op); steady-state decode must be allocation-free\n",
				$1, $(i - 1) > "/dev/stderr"
			bad = 1
		}
		if ($i == "allocs/op") seen++
	}
}
END {
	if (seen < 2) { print "error: zero-alloc decode benchmarks missing from output" > "/dev/stderr"; exit 1 }
	if (bad) exit 1
}'

echo "$RAW" | awk -v goversion="$(go env GOVERSION)" \
	-v benchtime="$BENCHTIME" -v count="$COUNT" '
BEGIN {
	printf "{\n  \"schema\": \"infilter-bench/1\",\n"
	printf "  \"go\": \"%s\",\n", goversion
	printf "  \"benchtime\": \"%s\",\n  \"count\": %s,\n", benchtime, count
	printf "  \"results\": ["
	n = 0
}
/^Benchmark/ {
	name = $1; ns = ""; bytes = "0"; allocs = "0"
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op")    ns = $(i - 1)
		if ($i == "B/op")     bytes = $(i - 1)
		if ($i == "allocs/op") allocs = $(i - 1)
	}
	if (ns == "") next
	if (n++) printf ","
	printf "\n    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
		name, ns, bytes, allocs
}
END {
	if (n == 0) { print "error: no benchmark results parsed" > "/dev/stderr"; exit 1 }
	printf "\n  ]\n}\n"
}' >"$OUT"

echo "==> wrote $(grep -c '"name"' "$OUT") results to $OUT"
