package bench

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"infilter/internal/analysis"
	"infilter/internal/dagflow"
	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/flowtools"
	"infilter/internal/idmef"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/packet"
	"infilter/internal/trace"
)

// TestEndToEndPipeline drives the complete deployment over real sockets:
// Dagflow replays normal and spoofed attack traffic as NetFlow v5
// datagrams over UDP, a flow-tools collector demultiplexes two emulated
// border routers by port, the Enhanced InFilter engine analyzes the flows,
// and IDMEF alerts arrive at a TCP consumer — the full Figure 9
// architecture in one test.
func TestEndToEndPipeline(t *testing.T) {
	start := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	target := netaddr.MustParsePrefix("192.0.2.0/24")
	peerBlocks := map[eia.PeerAS]netaddr.Prefix{
		1: netaddr.MustParsePrefix("61.0.0.0/11"),
		2: netaddr.MustParsePrefix("70.0.0.0/11"),
	}

	// Train the engine offline (§5.2 training phase).
	var labeled []analysis.LabeledRecord
	for peer, block := range peerBlocks {
		pkts := genNormal(t, int64(peer), 700, block, target, start)
		for _, r := range aggregateAll(pkts) {
			labeled = append(labeled, analysis.LabeledRecord{Peer: peer, Record: r})
		}
	}
	engine, err := analysis.Train(analysis.Config{Mode: analysis.ModeEnhanced}, labeled)
	if err != nil {
		t.Fatal(err)
	}

	// Alert UI over TCP.
	var (
		alertMu sync.Mutex
		alerts  []idmef.Alert
	)
	consumer := idmef.NewConsumer(func(a idmef.Alert) {
		alertMu.Lock()
		defer alertMu.Unlock()
		alerts = append(alerts, a)
	})
	alertPort, err := consumer.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()
	sender, err := idmef.Dial(fmt.Sprintf("127.0.0.1:%d", alertPort))
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	engine.SetAlertSink(func(a idmef.Alert) {
		if err := sender.Send(a); err != nil {
			t.Errorf("send alert: %v", err)
		}
	})

	// NetFlow collector: two UDP ports, one per emulated border router.
	var (
		engMu     sync.Mutex
		processed int
	)
	peerOfPort := map[int]eia.PeerAS{}
	collector := flowtools.New(flowtools.Config{MaxRecords: 1}, func(b flowtools.Batch) {
		peer := peerOfPort[b.Port]
		engMu.Lock()
		defer engMu.Unlock()
		for _, r := range b.Records {
			engine.Process(peer, r)
			processed++
		}
	})
	defer collector.Close()
	port1, err := collector.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	port2, err := collector.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	peerOfPort[port1], peerOfPort[port2] = 1, 2

	// Benign replay into both routers.
	wantFlows := 0
	for peer, block := range peerBlocks {
		pkts := genNormal(t, 50+int64(peer), 150, block, target, start.Add(time.Hour))
		inst := dagflow.New(dagflow.Config{
			Name:    fmt.Sprintf("S%d", peer),
			InputIf: uint16(peer),
			Cache:   netflow.CacheConfig{ExpireOnFINRST: true},
		}, start)
		dgs, err := inst.Replay(pkts)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range dgs {
			wantFlows += d.Flows
		}
		dst := port1
		if peer == 2 {
			dst = port2
		}
		if err := dagflow.SendUDP(fmt.Sprintf("127.0.0.1:%d", dst), dgs); err != nil {
			t.Fatal(err)
		}
	}

	// Attack replay: slammer spoofed from peer 2's space entering router 1.
	attack, err := trace.Generate(trace.AttackSlammer, trace.AttackConfig{
		Seed: 9, Start: start.Add(2 * time.Hour),
		Src:       netaddr.MustParseAddr("203.0.113.5"),
		DstPrefix: target,
	})
	if err != nil {
		t.Fatal(err)
	}
	spoof, err := dagflow.NewSpoofPolicy([]netaddr.Prefix{peerBlocks[2]}, 3)
	if err != nil {
		t.Fatal(err)
	}
	atk := dagflow.New(dagflow.Config{
		Name: "atk", Policy: spoof, InputIf: 1,
	}, start)
	dgs, err := atk.Replay(attack)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dgs {
		wantFlows += d.Flows
	}
	if err := dagflow.SendUDP(fmt.Sprintf("127.0.0.1:%d", port1), dgs); err != nil {
		t.Fatal(err)
	}

	// Wait for the pipeline to drain.
	deadline := time.Now().Add(10 * time.Second)
	for {
		engMu.Lock()
		done := processed >= wantFlows
		engMu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			engMu.Lock()
			t.Fatalf("processed %d/%d flows before deadline", processed, wantFlows)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Every flow is processed, so the engine has sent every alert it will
	// send; wait until all of them have crossed the TCP consumer (benign
	// FP alerts arrive first — counting at the first alert would miss the
	// slammer alerts still in flight).
	engMu.Lock()
	wantAlerts := engine.Stats().Attacks
	engMu.Unlock()
	if wantAlerts == 0 {
		t.Fatal("no attacks detected")
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		alertMu.Lock()
		n := len(alerts)
		alertMu.Unlock()
		if n >= wantAlerts {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d IDMEF alerts delivered", n, wantAlerts)
		}
		time.Sleep(10 * time.Millisecond)
	}
	alertMu.Lock()
	defer alertMu.Unlock()
	spoofedAlerts := 0
	for _, a := range alerts {
		// The attack's signature: a peer-2 source observed at peer 1.
		if a.Assessment.PeerAS == 1 &&
			peerBlocks[2].Contains(netaddr.MustParseAddr(a.Source.Address)) {
			spoofedAlerts++
		}
	}
	// The slammer burst dominates the alert stream; a few benign false
	// positives (holdout flows from untrained /24s) are expected and fine.
	if spoofedAlerts < 5 {
		t.Errorf("only %d/%d alerts reference the spoofed range", spoofedAlerts, len(alerts))
	}
	if fp := len(alerts) - spoofedAlerts; fp > spoofedAlerts {
		t.Errorf("false-positive alerts (%d) outnumber attack alerts (%d)", fp, spoofedAlerts)
	}
	// Benign traffic should be largely clean: the engine's false alarms
	// must stay far below its attack detections.
	engMu.Lock()
	st := engine.Stats()
	engMu.Unlock()
	if st.Attacks == 0 || st.Attacks > st.Processed/4 {
		t.Errorf("stats look wrong: %+v", st)
	}
}

func genNormal(t *testing.T, seed int64, flows int, src, dst netaddr.Prefix, start time.Time) []packet.Packet {
	t.Helper()
	pkts, err := trace.GenerateNormal(trace.NormalConfig{
		Seed: seed, Start: start, Flows: flows,
		SrcPrefixes: []netaddr.Prefix{src}, DstPrefix: dst,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pkts
}

func aggregateAll(pkts []packet.Packet) []flow.Record {
	cache := netflow.NewCache(netflow.CacheConfig{ExpireOnFINRST: true})
	for _, p := range pkts {
		cache.Observe(p, 1)
	}
	cache.FlushAll()
	return cache.Drain()
}
