package bench

import (
	"time"

	"infilter/internal/dagflow"
	"infilter/internal/netflow"
)

// dagflowInstance builds a fresh replay instance for throughput benches.
func dagflowInstance(boot time.Time) *dagflow.Instance {
	return dagflow.New(dagflow.Config{
		Name:    "bench",
		InputIf: 1,
		Cache:   netflow.CacheConfig{ExpireOnFINRST: true},
	}, boot)
}
