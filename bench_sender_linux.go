//go:build linux && amd64

package bench

import (
	"net"
	"syscall"
	"unsafe"
)

// burstSender replays pre-encoded datagrams over a connected UDP socket
// with sendmmsg, so the replay harness does not serialize the pipeline
// under test behind one write syscall per datagram. Mirrors the recvmmsg
// reader in internal/flowtools.
type burstSender struct {
	rc   syscall.RawConn
	iovs []syscall.Iovec
	hdrs []sendMmsgHdr
}

// sendMmsgHdr matches struct mmsghdr on linux/amd64.
type sendMmsgHdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// sysSendmmsg is SYS_SENDMMSG on linux/amd64; the syscall package stops
// one short of it (it exports SYS_RECVMMSG = 299 but not 307).
const sysSendmmsg = 307

const burstDatagrams = 8

func newBurstSender(conn *net.UDPConn) (*burstSender, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	return &burstSender{
		rc:   rc,
		iovs: make([]syscall.Iovec, burstDatagrams),
		hdrs: make([]sendMmsgHdr, burstDatagrams),
	}, nil
}

// send transmits n datagrams (n ≤ burstDatagrams) taken from raws at
// positions start, start+1, … (wrapping) and returns how many the kernel
// accepted.
func (s *burstSender) send(raws [][]byte, start, n int) (int, error) {
	if n > len(s.hdrs) {
		n = len(s.hdrs)
	}
	for i := 0; i < n; i++ {
		raw := raws[(start+i)%len(raws)]
		s.iovs[i] = syscall.Iovec{Base: &raw[0], Len: uint64(len(raw))}
		s.hdrs[i] = sendMmsgHdr{hdr: syscall.Msghdr{Iov: &s.iovs[i], Iovlen: 1}}
	}
	var sent int
	var errno syscall.Errno
	err := s.rc.Write(func(fd uintptr) bool {
		r, _, e := syscall.Syscall6(sysSendmmsg, fd,
			uintptr(unsafe.Pointer(&s.hdrs[0])), uintptr(n), 0, 0, 0)
		if e == syscall.EAGAIN {
			return false // wait until writable, then retry
		}
		sent, errno = int(r), e
		return true
	})
	if err != nil {
		return 0, err
	}
	if errno != 0 {
		return 0, errno
	}
	return sent, nil
}
