// Route-change scenario: a subnet that used to enter the ISP through peer
// AS 2 starts arriving through peer AS 1 after an inter-domain routing
// change. Basic InFilter flags every one of its flows (false positives);
// Enhanced InFilter vets them through NNS, and after enough vouched flows
// promotes the subnet into peer 1's EIA set so suspicion stops entirely.
package main

import (
	"fmt"
	"log"
	"time"

	"infilter/internal/analysis"
	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/packet"
	"infilter/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	target := netaddr.MustParsePrefix("192.0.2.0/24")
	moved := netaddr.MustParsePrefix("70.4.4.0/24") // the subnet that re-homes

	var labeled []analysis.LabeledRecord
	for peer, block := range map[eia.PeerAS]netaddr.Prefix{
		1: netaddr.MustParsePrefix("61.0.0.0/11"),
		2: netaddr.MustParsePrefix("70.0.0.0/11"),
	} {
		pkts, err := trace.GenerateNormal(trace.NormalConfig{
			Seed: int64(peer), Start: start, Flows: 800,
			SrcPrefixes: []netaddr.Prefix{block}, DstPrefix: target,
		})
		if err != nil {
			return err
		}
		for _, r := range aggregate(pkts) {
			labeled = append(labeled, analysis.LabeledRecord{Peer: peer, Record: r})
		}
	}

	// The re-homed subnet's post-change traffic, arriving at peer 1.
	movedPkts, err := trace.GenerateNormal(trace.NormalConfig{
		Seed: 77, Start: start.Add(time.Hour), Flows: 250,
		SrcPrefixes: []netaddr.Prefix{moved}, DstPrefix: target,
	})
	if err != nil {
		return err
	}
	movedFlows := aggregate(movedPkts)

	for _, mode := range []analysis.Mode{analysis.ModeBasic, analysis.ModeEnhanced} {
		engine, err := analysis.Train(analysis.Config{Mode: mode}, labeled)
		if err != nil {
			return err
		}
		fp, promotedAt := 0, -1
		for i, r := range movedFlows {
			d := engine.Process(1, r)
			if d.Attack {
				fp++
			}
			if d.Promoted && promotedAt < 0 {
				promotedAt = i
			}
		}
		fmt.Printf("%s: %d/%d re-homed flows flagged as attacks", mode, fp, len(movedFlows))
		if promotedAt >= 0 {
			fmt.Printf("; subnet promoted into peer 1's EIA set after %d vouched flows", promotedAt+1)
		}
		fmt.Println()
		if mode == analysis.ModeEnhanced {
			if v := engine.EIASet().Check(1, moved.Nth(42)); v == eia.Match {
				fmt.Println("EI: post-promotion, the moved subnet now matches at peer 1 — no more suspicion")
			}
		}
	}
	return nil
}

func aggregate(pkts []packet.Packet) []flow.Record {
	cache := netflow.NewCache(netflow.CacheConfig{ExpireOnFINRST: true})
	for _, p := range pkts {
		cache.Observe(p, 1)
	}
	cache.FlushAll()
	return cache.Drain()
}
