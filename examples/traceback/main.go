// Traceback scenario: attacks with spoofed sources enter the ISP through
// two different peer ASes while benign traffic flows everywhere. The
// traceback tracker aggregates the engine's IDMEF alerts per ingress and
// names the border routers the attack traffic is actually using — the
// extension the paper sketches in its conclusions.
package main

import (
	"fmt"
	"log"
	"time"

	"infilter/internal/analysis"
	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/packet"
	"infilter/internal/trace"
	"infilter/internal/traceback"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	target := netaddr.MustParsePrefix("192.0.2.0/24")
	peerBlocks := map[eia.PeerAS]netaddr.Prefix{
		1: netaddr.MustParsePrefix("61.0.0.0/11"),
		2: netaddr.MustParsePrefix("70.0.0.0/11"),
		3: netaddr.MustParsePrefix("88.0.0.0/11"),
	}

	var labeled []analysis.LabeledRecord
	for peer, block := range peerBlocks {
		pkts, err := trace.GenerateNormal(trace.NormalConfig{
			Seed: int64(peer), Start: start, Flows: 600,
			SrcPrefixes: []netaddr.Prefix{block}, DstPrefix: target,
		})
		if err != nil {
			return err
		}
		for _, r := range aggregate(pkts) {
			labeled = append(labeled, analysis.LabeledRecord{Peer: peer, Record: r})
		}
	}
	engine, err := analysis.Train(analysis.Config{Mode: analysis.ModeEnhanced}, labeled)
	if err != nil {
		return err
	}

	tracker := traceback.New(traceback.Config{MinShare: 0.1})
	engine.SetAlertSink(tracker.Observe)
	clock := start.Add(time.Hour)
	engine.SetClock(func() time.Time { return clock })

	// Attacks enter via peers 1 and 3; peer 2 carries only benign traffic.
	scenarios := []struct {
		at   trace.AttackType
		peer eia.PeerAS
		src  string
	}{
		{trace.AttackSlammer, 1, "70.9.9.9"},
		{trace.AttackTFN2K, 3, "61.8.8.8"},
		{trace.AttackIdlescan, 1, "88.7.7.7"},
	}
	for i, sc := range scenarios {
		pkts, err := trace.Generate(sc.at, trace.AttackConfig{
			Seed: int64(20 + i), Start: clock.Add(time.Duration(i) * time.Minute),
			Src: netaddr.MustParseAddr(sc.src), DstPrefix: target,
		})
		if err != nil {
			return err
		}
		for _, r := range aggregate(pkts) {
			engine.Process(sc.peer, r)
		}
	}
	// Benign flows at peer 2 from its own space must not implicate it.
	benign, err := trace.GenerateNormal(trace.NormalConfig{
		Seed: 99, Start: clock, Flows: 200,
		SrcPrefixes: []netaddr.Prefix{peerBlocks[2]}, DstPrefix: target,
	})
	if err != nil {
		return err
	}
	for _, r := range aggregate(benign) {
		engine.Process(2, r)
	}

	fmt.Printf("alerts in window: %d\n", tracker.WindowSize(clock))
	fmt.Println("traceback verdict — attack entry points:")
	for _, in := range tracker.EntryPoints(clock) {
		fmt.Printf("  %s (stages: %v)\n", in, in.ByStage)
	}
	return nil
}

func aggregate(pkts []packet.Packet) []flow.Record {
	cache := netflow.NewCache(netflow.CacheConfig{ExpireOnFINRST: true})
	for _, p := range pkts {
		cache.Observe(p, 1)
	}
	cache.FlushAll()
	return cache.Drain()
}
