// DDoS scenario: a TFN2K flood with spoofed sources enters the target ISP
// through one peer AS while benign traffic flows normally. The engine's
// IDMEF alerts travel over a real TCP connection to a consumer, as they
// would from infilterd to the Alert UI.
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"infilter/internal/analysis"
	"infilter/internal/dagflow"
	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/idmef"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/packet"
	"infilter/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	target := netaddr.MustParsePrefix("192.0.2.0/24")
	peer1 := netaddr.MustParsePrefix("61.0.0.0/11")
	peer2 := netaddr.MustParsePrefix("70.0.0.0/11")

	// Train on both peers' benign traffic.
	var labeled []analysis.LabeledRecord
	for peer, block := range map[eia.PeerAS]netaddr.Prefix{1: peer1, 2: peer2} {
		pkts, err := trace.GenerateNormal(trace.NormalConfig{
			Seed: int64(peer), Start: start, Flows: 800,
			SrcPrefixes: []netaddr.Prefix{block}, DstPrefix: target,
		})
		if err != nil {
			return err
		}
		for _, r := range aggregate(pkts) {
			labeled = append(labeled, analysis.LabeledRecord{Peer: peer, Record: r})
		}
	}
	engine, err := analysis.Train(analysis.Config{Mode: analysis.ModeEnhanced}, labeled)
	if err != nil {
		return err
	}

	// Wire a real IDMEF consumer.
	var alerts atomic.Int64
	consumer := idmef.NewConsumer(func(a idmef.Alert) {
		if alerts.Add(1) <= 3 {
			fmt.Printf("  alert %s: stage=%s %s -> %s\n",
				a.MessageID, a.Assessment.Stage, a.Source.Address, a.Target.Address)
		}
	})
	port, err := consumer.Listen(0)
	if err != nil {
		return err
	}
	defer consumer.Close()
	sender, err := idmef.Dial(fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		return err
	}
	defer sender.Close()
	engine.SetAlertSink(func(a idmef.Alert) {
		if err := sender.Send(a); err != nil {
			log.Printf("send alert: %v", err)
		}
	})

	// The TFN2K flood: sources spoofed from peer 2's space, entering via
	// peer AS 1's border router (Dagflow does the spoofing).
	flood, err := trace.Generate(trace.AttackTFN2K, trace.AttackConfig{
		Seed: 9, Start: start.Add(time.Hour),
		Src:       netaddr.MustParseAddr("203.0.113.99"),
		DstPrefix: target, Scale: 2,
	})
	if err != nil {
		return err
	}
	spoof, err := dagflow.NewSpoofPolicy([]netaddr.Prefix{peer2}, 5)
	if err != nil {
		return err
	}
	inst := dagflow.New(dagflow.Config{
		Name: "tfn2k", Policy: spoof, InputIf: 1,
	}, start)
	dgs, err := inst.Replay(flood)
	if err != nil {
		return err
	}
	db := netflow.NewDecodeBuffer(nil)
	attackFlows, flagged := 0, 0
	for _, d := range dgs {
		msg, err := netflow.Decode(d.Raw, db)
		if err != nil {
			return err
		}
		for _, fr := range msg.Records {
			attackFlows++
			if engine.Process(1, fr).Attack {
				flagged++
			}
		}
	}

	// Give the TCP stream a moment to drain.
	deadline := time.Now().Add(3 * time.Second)
	for alerts.Load() < int64(flagged) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("TFN2K flood: %d/%d flood flows flagged, %d IDMEF alerts delivered\n",
		flagged, attackFlows, alerts.Load())
	fmt.Printf("stage breakdown: %v\n", engine.Stats().ByStage)
	return nil
}

func aggregate(pkts []packet.Packet) []flow.Record {
	cache := netflow.NewCache(netflow.CacheConfig{ExpireOnFINRST: true})
	for _, p := range pkts {
		cache.Observe(p, 1)
	}
	cache.FlushAll()
	return cache.Drain()
}
