// Scan detection scenario: a Slammer-style network scan (one UDP port,
// many hosts) and an nmap Idlescan host scan (many ports, one host) pass
// through the Enhanced InFilter pipeline; the Scan Analysis stage catches
// both even though every probe is a single innocuous-looking packet.
package main

import (
	"fmt"
	"log"
	"time"

	"infilter/internal/analysis"
	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/idmef"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/packet"
	"infilter/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	target := netaddr.MustParsePrefix("192.0.2.0/24")

	pkts, err := trace.GenerateNormal(trace.NormalConfig{
		Seed: 1, Start: start, Flows: 1000,
		SrcPrefixes: []netaddr.Prefix{netaddr.MustParsePrefix("61.0.0.0/11")},
		DstPrefix:   target,
	})
	if err != nil {
		return err
	}
	var labeled []analysis.LabeledRecord
	for _, r := range aggregate(pkts) {
		labeled = append(labeled, analysis.LabeledRecord{Peer: 1, Record: r})
	}
	engine, err := analysis.Train(analysis.Config{Mode: analysis.ModeEnhanced}, labeled)
	if err != nil {
		return err
	}

	scenarios := []struct {
		name string
		at   trace.AttackType
	}{
		{"slammer network scan (udp/1434 across hosts)", trace.AttackSlammer},
		{"nmap idlescan host scan (port sweep on one host)", trace.AttackIdlescan},
	}
	for i, sc := range scenarios {
		attack, err := trace.Generate(sc.at, trace.AttackConfig{
			Seed:  int64(10 + i),
			Start: start.Add(time.Duration(i+1) * time.Hour),
			// Spoofed source outside every EIA set.
			Src:       netaddr.MustParseAddr("198.51.100.77"),
			DstPrefix: target,
		})
		if err != nil {
			return err
		}
		var flagged, total int
		var stages = map[idmef.Stage]int{}
		for _, r := range aggregate(attack) {
			total++
			if d := engine.Process(1, r); d.Attack {
				flagged++
				stages[d.Stage]++
			}
		}
		fmt.Printf("%-50s %d/%d flows flagged, stages=%v\n", sc.name, flagged, total, stages)
	}
	return nil
}

func aggregate(pkts []packet.Packet) []flow.Record {
	cache := netflow.NewCache(netflow.CacheConfig{ExpireOnFINRST: true})
	for _, p := range pkts {
		cache.Observe(p, 1)
	}
	cache.FlushAll()
	return cache.Drain()
}

var _ = eia.Match // keep the import for the verdict type referenced in docs
