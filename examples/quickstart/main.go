// Quickstart: train an Enhanced InFilter engine on synthetic normal
// traffic for two peer ASes, then process a benign flow and a spoofed
// Slammer probe and print the decisions.
package main

import (
	"fmt"
	"log"
	"time"

	"infilter/internal/analysis"
	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/packet"
	"infilter/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	target := netaddr.MustParsePrefix("192.0.2.0/24")

	// 1. Generate labeled normal traffic for two peer ASes.
	var labeled []analysis.LabeledRecord
	for peer, block := range map[eia.PeerAS]netaddr.Prefix{
		1: netaddr.MustParsePrefix("61.0.0.0/11"),
		2: netaddr.MustParsePrefix("70.0.0.0/11"),
	} {
		pkts, err := trace.GenerateNormal(trace.NormalConfig{
			Seed:        int64(peer),
			Start:       start,
			Flows:       800,
			SrcPrefixes: []netaddr.Prefix{block},
			DstPrefix:   target,
		})
		if err != nil {
			return err
		}
		for _, r := range aggregate(pkts) {
			labeled = append(labeled, analysis.LabeledRecord{Peer: peer, Record: r})
		}
	}

	// 2. Train the Enhanced InFilter engine (EIA sets + NNS clusters).
	engine, err := analysis.Train(analysis.Config{Mode: analysis.ModeEnhanced}, labeled)
	if err != nil {
		return err
	}
	fmt.Printf("trained: %d EIA prefixes across peers %v\n",
		engine.EIASet().Len(), engine.EIASet().Peers())

	// 3. A benign flow from a subnet peer 1's training traffic used,
	// arriving at peer 1 as expected.
	var knownSrc netaddr.Addr
	for _, lr := range labeled {
		if lr.Peer == 1 {
			knownSrc = lr.Record.Key.Src
			break
		}
	}
	benign := flow.Record{
		Key: flow.Key{
			Src: knownSrc, Dst: target.Nth(9),
			Proto: flow.ProtoTCP, SrcPort: 30000, DstPort: 80,
		},
		Packets: 12, Bytes: 9000,
		Start: start.Add(time.Hour), End: start.Add(time.Hour + 2*time.Second),
	}
	d := engine.Process(1, benign)
	fmt.Printf("benign http flow:  verdict=%v attack=%v\n", d.Verdict, d.Attack)

	// 4. A Slammer burst spoofed from peer 2's space, entering at peer 1.
	pkts, err := trace.Generate(trace.AttackSlammer, trace.AttackConfig{
		Seed: 7, Start: start.Add(2 * time.Hour),
		Src:       netaddr.MustParseAddr("70.9.9.9"),
		DstPrefix: target,
	})
	if err != nil {
		return err
	}
	detections := 0
	for _, r := range aggregate(pkts) {
		if d := engine.Process(1, r); d.Attack {
			detections++
		}
	}
	fmt.Printf("spoofed slammer:   %d flows flagged (stages: %v)\n",
		detections, engine.Stats().ByStage)
	return nil
}

func aggregate(pkts []packet.Packet) []flow.Record {
	cache := netflow.NewCache(netflow.CacheConfig{ExpireOnFINRST: true})
	for _, p := range pkts {
		cache.Observe(p, 1)
	}
	cache.FlushAll()
	return cache.Drain()
}
