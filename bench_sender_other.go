//go:build !(linux && amd64)

package bench

import "net"

// burstSender is the portable replay sender: one write per datagram.
type burstSender struct {
	conn *net.UDPConn
}

const burstDatagrams = 8

func newBurstSender(conn *net.UDPConn) (*burstSender, error) {
	return &burstSender{conn: conn}, nil
}

func (s *burstSender) send(raws [][]byte, start, n int) (int, error) {
	for i := 0; i < n; i++ {
		if _, err := s.conn.Write(raws[(start+i)%len(raws)]); err != nil {
			return i, err
		}
	}
	return n, nil
}
