module infilter

go 1.22
