package bench

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"infilter/internal/bgp"
	"infilter/internal/flow"
	"infilter/internal/flowtools"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/packet"
)

// These tests assert the input-facing parsers never panic and never return
// both a value and corruption on adversarial bytes — the daemon's sockets
// face the open network.

func TestNetFlowDecodeNeverPanics(t *testing.T) {
	db := netflow.NewDecodeBuffer(nil)
	f := func(raw []byte) bool {
		msg, err := netflow.Decode(raw, db)
		if err != nil {
			return true // rejected cleanly
		}
		return len(msg.Records) <= len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNetFlowDecodeFlippedBits(t *testing.T) {
	// Start from a valid v5 datagram and flip random bytes: must never
	// panic, and a decode that succeeds must stay bounded by the input.
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	recs := make([]flow.Record, 7)
	for i := range recs {
		recs[i] = flow.Record{
			Key:     flow.Key{Src: netaddr.IPv4(uint32(i + 1)).Addr(), Dst: netaddr.IPv4(0xc0000201).Addr(), Proto: flow.ProtoTCP, DstPort: 80},
			Packets: 1, Bytes: 40, Start: boot, End: boot,
		}
	}
	dgs := netflow.NewV5Encoder(boot, 1).Encode(recs, boot.Add(time.Minute))
	raw := dgs[0].Raw
	db := netflow.NewDecodeBuffer(nil)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		mut := append([]byte(nil), raw...)
		for j := 0; j < 1+rng.Intn(4); j++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		if got, err := netflow.Decode(mut, db); err == nil {
			if len(got.Records) > len(mut) {
				t.Fatal("decoded more records than input bytes on mutated input")
			}
		}
	}
}

func TestBGPParserNeverPanics(t *testing.T) {
	words := []string{"*", "*>", "4.0.0.0", "1.2.3.4", "4.2.101.0/24", "i", "e",
		"1224", "38", "99999", "-3", "x", "(", "...", ""}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		var sb strings.Builder
		lines := rng.Intn(5)
		for l := 0; l < lines; l++ {
			n := rng.Intn(8)
			for w := 0; w < n; w++ {
				sb.WriteString(words[rng.Intn(len(words))])
				sb.WriteByte(' ')
			}
			sb.WriteByte('\n')
		}
		// Must not panic; errors are fine.
		_, _ = bgp.ParseShowIPBGP(strings.NewReader(sb.String()))
	}
}

func TestFlowtoolsASCIINeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = flowtools.ReadASCII(bytes.NewReader(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestTraceReaderNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		tr, err := packet.NewTraceReader(bytes.NewReader(raw))
		if err != nil {
			return true
		}
		_, _ = tr.ReadAll()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestStoreReaderNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		sr, err := flowtools.NewStoreReader(bytes.NewReader(raw))
		if err != nil {
			return true
		}
		_, _ = sr.ReadAll()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestFilterCompilerNeverPanics(t *testing.T) {
	words := []string{"proto", "tcp", "udp", "and", "or", "not", "(", ")",
		"dst-port", "80", "src-net", "61.0.0.0/11", "bogus", "-1", ""}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		var sb strings.Builder
		n := rng.Intn(10)
		for w := 0; w < n; w++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		_, _ = flowtools.CompileFilter(sb.String())
	}
}

func TestParseIPv4NeverAcceptsGarbage(t *testing.T) {
	f := func(s string) bool {
		ip, err := netaddr.ParseIPv4(s)
		if err != nil {
			return true
		}
		// Anything accepted must round-trip.
		back, err2 := netaddr.ParseIPv4(ip.String())
		return err2 == nil && back == ip
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
