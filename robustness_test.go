package bench

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"infilter/internal/bgp"
	"infilter/internal/flowtools"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/packet"
)

// These tests assert the input-facing parsers never panic and never return
// both a value and corruption on adversarial bytes — the daemon's sockets
// face the open network.

func TestNetFlowUnmarshalNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		d, err := netflow.Unmarshal(raw)
		if err != nil {
			return d == nil
		}
		return int(d.Header.Count) == len(d.Records)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNetFlowUnmarshalFlippedBits(t *testing.T) {
	// Start from a valid datagram and flip random bytes: must never panic,
	// and version/count checks must stay coherent.
	d := &netflow.Datagram{Records: make([]netflow.Record, 7)}
	raw, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		mut := append([]byte(nil), raw...)
		for j := 0; j < 1+rng.Intn(4); j++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		if got, err := netflow.Unmarshal(mut); err == nil {
			if int(got.Header.Count) != len(got.Records) {
				t.Fatal("count/records mismatch on mutated input")
			}
		}
	}
}

func TestBGPParserNeverPanics(t *testing.T) {
	words := []string{"*", "*>", "4.0.0.0", "1.2.3.4", "4.2.101.0/24", "i", "e",
		"1224", "38", "99999", "-3", "x", "(", "...", ""}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		var sb strings.Builder
		lines := rng.Intn(5)
		for l := 0; l < lines; l++ {
			n := rng.Intn(8)
			for w := 0; w < n; w++ {
				sb.WriteString(words[rng.Intn(len(words))])
				sb.WriteByte(' ')
			}
			sb.WriteByte('\n')
		}
		// Must not panic; errors are fine.
		_, _ = bgp.ParseShowIPBGP(strings.NewReader(sb.String()))
	}
}

func TestFlowtoolsASCIINeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = flowtools.ReadASCII(bytes.NewReader(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestTraceReaderNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		tr, err := packet.NewTraceReader(bytes.NewReader(raw))
		if err != nil {
			return true
		}
		_, _ = tr.ReadAll()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestStoreReaderNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		sr, err := flowtools.NewStoreReader(bytes.NewReader(raw))
		if err != nil {
			return true
		}
		_, _ = sr.ReadAll()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestFilterCompilerNeverPanics(t *testing.T) {
	words := []string{"proto", "tcp", "udp", "and", "or", "not", "(", ")",
		"dst-port", "80", "src-net", "61.0.0.0/11", "bogus", "-1", ""}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		var sb strings.Builder
		n := rng.Intn(10)
		for w := 0; w < n; w++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		_, _ = flowtools.CompileFilter(sb.String())
	}
}

func TestParseIPv4NeverAcceptsGarbage(t *testing.T) {
	f := func(s string) bool {
		ip, err := netaddr.ParseIPv4(s)
		if err != nil {
			return true
		}
		// Anything accepted must round-trip.
		back, err2 := netaddr.ParseIPv4(ip.String())
		return err2 == nil && back == ip
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
